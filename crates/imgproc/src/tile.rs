//! Deterministic program scheduling across row tiles for the SC-ReRAM
//! image kernels.
//!
//! The in-memory kernels are embarrassingly parallel across pixels, but a
//! hardware accelerator instance is stateful (TRNG, row allocator, cost
//! ledger). The tiling layer therefore splits the *output* image into
//! fixed-height row tiles and runs one accelerator instance per tile —
//! mirroring how a multi-array deployment shards a frame across banks
//! (cf. `imsc::pipeline`). Tile geometry and per-tile seeds are pure
//! functions of the image size and the configured master seed, so results
//! are bit-identical whether tiles execute sequentially or on a thread
//! pool, and per-tile [`CostLedger`]s merge in tile order so accumulated
//! hardware-cost numbers (the Table III / Fig. 4–5 inputs) are unchanged
//! by parallelism.
//!
//! Since the program-IR refactor, the kernels are *program emitters*
//! ([`TileEmitter`]), and [`run_tile_programs`] schedules the emitted
//! programs under one of two [`Schedule`]s:
//!
//! * [`Schedule::PerTile`] — one [`imsc::Program`] per tile, planned and
//!   executed whole on the tile's accelerator. With the `parallel`
//!   feature, whole tiles run on the deterministic work queue
//!   (`imsc::parallel`, the machinery this module originally owned,
//!   since hoisted into core), one pooled [`ExecArena`] per worker so
//!   per-tile re-planning stops reallocating the register file.
//! * [`Schedule::Pipelined`] — one *logical* program for the whole image,
//!   partitioned at tile-shaped output boundaries by
//!   `imsc::program::sched` and executed by the cross-array
//!   [`PipelineScheduler`]: slices flow through the ❶ SBS / ❷ arithmetic
//!   / ❸ S2B stage workers with a bounded inter-stage queue and at most
//!   `arrays` accelerator instances in flight. The slice programs are
//!   op-identical to per-tile emission and each slice's accelerator uses
//!   the same per-tile seed, so pixels, ledgers, and RN epochs are
//!   bit-identical to the per-tile path — the pipelined run additionally
//!   reports measured stage occupancy and initiation interval
//!   ([`ScRunStats::pipeline`]).
//!
//! With a template cache attached ([`ScReramConfig::plan_cache`]), both
//! schedules stop compiling per tile: each tile's emitter runs once as a
//! [`ValueTape`] (microseconds instead of the emit + optimize + plan
//! milliseconds), and a cache hit binds the tile's values into the
//! shared pre-compiled [`Template`]. On the pipelined schedule the
//! tile-shaped ranges are taped directly — legal because slices are
//! op-identical to per-tile emission — so slices share the very same
//! templates. Repeated *frames* skip even the tape: each kernel digests
//! its inputs once per run ([`TileEmitter::frame_digest`]), and a tile
//! whose (kernel, rows, digest, config) key recurs executes its cached
//! (template, bindings) pair directly — the fully-bound fast path that
//! makes steady-state per-tile compile cost a row-range hash and one map
//! probe. Results are bit-identical cached or not; the run's
//! hit/miss/fallback counts surface as [`ScRunStats::plan_cache`] and
//! the compile-time split as [`ScRunStats::compile`].

use crate::error::ImgError;
use crate::image::GrayImage;
use crate::scbackend::{prob_to_pixel, ScReramConfig};
use imsc::cost::CostLedger;
use imsc::engine::Accelerator;
use imsc::instrument::{ReplaySummary, SinkHandle};
use imsc::program::cache::{
    mix, BoundEntry, BoundKey, PlanCache, Template, TemplateKey, ValueTape,
};
use imsc::program::sched::{self, PipelineReport, PipelineScheduler};
use imsc::program::Program;
use imsc::{
    optimize, CompileStats, ExecArena, Optimize, ProgramSink, RnRefreshPolicy, SliceExec,
    WearSummary,
};
use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;

/// Output rows per tile. Small enough to parallelize modest images,
/// large enough to amortize accelerator construction per tile.
pub(crate) const TILE_ROWS: usize = 8;

/// A kernel's program emitter over one row range of the output image,
/// generic over the [`ProgramSink`] so one code path both builds real
/// [`Program`]s (uncached runs, cache misses) and records the cheap
/// [`ValueTape`] a cache lookup needs. Emission must be deterministic in
/// `rows` and independent of the tile index.
pub(crate) trait TileEmitter: Sync {
    /// Stable kernel identity in the template-cache key. A method rather
    /// than an associated const so that enum emitters dispatching over
    /// several kernels (the batch runner's [`crate::request`] path) can
    /// implement the trait per variant.
    fn kernel(&self) -> &'static str;

    /// The kernel's default RN refresh policy — what the tile
    /// accelerators run under unless [`ScReramConfig::refresh_policy`]
    /// overrides it.
    fn default_policy(&self) -> RnRefreshPolicy;

    /// Emits the program covering `rows` (one output per pixel,
    /// row-major).
    fn emit<S: ProgramSink>(&self, rows: Range<usize>, sink: &mut S);

    /// Digest of everything emission depends on *besides* the row range
    /// — input image bytes and kernel parameters (use [`digest_image`]).
    /// Enables the cache's fully-bound fast path: a tile whose (kernel,
    /// rows, digest, config) key recurs executes its cached template and
    /// bindings without re-running the emitter at all. There is no tape
    /// to cross-check on that path, so an under-covering digest silently
    /// breaks the cached ≡ uncached contract — hash *every* input, or
    /// return `None` to opt out (each lookup then tapes).
    fn frame_digest(&self) -> Option<u64> {
        None
    }
}

/// Seed for [`TileEmitter::frame_digest`] chains.
pub(crate) const FRAME_DIGEST_SEED: u64 = 0x4652_414D_4544_4947;

/// Mixes an image's dimensions and pixel bytes into a frame digest,
/// eight bytes per round.
pub(crate) fn digest_image(h: u64, img: &GrayImage) -> u64 {
    let mut h = mix(h, img.width() as u64);
    h = mix(h, img.height() as u64);
    let mut chunks = img.pixels().chunks_exact(8);
    for c in &mut chunks {
        h = mix(h, u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
    }
    let mut tail = 0u64;
    for (i, &b) in chunks.remainder().iter().enumerate() {
        tail |= u64::from(b) << (8 * i);
    }
    mix(h, tail)
}

/// How a kernel's emitted programs are scheduled onto accelerators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// One whole program per row tile, one accelerator per tile —
    /// data-parallel across tiles (the default).
    #[default]
    PerTile,
    /// Cross-array pipelining: tile-shaped slices of one logical program
    /// flow through the ❶/❷/❸ stage workers with at most `arrays`
    /// accelerator instances in flight. Bit-identical results to
    /// [`Schedule::PerTile`], plus a measured [`PipelineReport`].
    Pipelined {
        /// Accelerator instances (arrays) in flight; must be nonzero.
        arrays: usize,
    },
}

/// How one tile's template-cache lookup resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CacheOutcome {
    /// Served from the cache: either the fully-bound fast path (frame
    /// digest recurred — nothing re-ran at all) or a tape whose key
    /// found an accepting template (emit, optimize and plan skipped).
    Hit,
    /// Key absent: the tile compiled from scratch and the template was
    /// inserted for the tiles and frames that follow. A changed value
    /// pattern at a value-dependent optimizer level lands here too — its
    /// key's value hash is fresh.
    Miss,
    /// Key present but the resident template's recorded source disagreed
    /// with the tape (a 64-bit hash collision): the tile compiled from
    /// scratch and the resident entry was left alone.
    Fallback,
}

/// Template-cache outcome counts of one kernel run
/// ([`ScRunStats::plan_cache`]). One lookup happens per tile (or per
/// pipelined slice — same ranges), so `lookups()` equals the run's tile
/// count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheRun {
    /// Tiles served from a cached template.
    pub hits: u64,
    /// Tiles compiled from scratch (and inserted).
    pub misses: u64,
    /// Tiles compiled from scratch after a hash-collision rejection
    /// (nothing inserted).
    pub fallbacks: u64,
}

impl PlanCacheRun {
    /// Total lookups (one per tile).
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses + self.fallbacks
    }

    /// Fraction of lookups served from the cache (0 when no lookups).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    fn count(&mut self, outcome: CacheOutcome) {
        match outcome {
            CacheOutcome::Hit => self.hits += 1,
            CacheOutcome::Miss => self.misses += 1,
            CacheOutcome::Fallback => self.fallbacks += 1,
        }
    }
}

/// The result of processing one row tile.
#[derive(Debug, Clone)]
pub(crate) struct TileOut {
    /// Row-major pixels of this tile (`rows.len() * width` entries).
    pub pixels: Vec<u8>,
    /// The tile accelerator's accumulated hardware-cost ledger.
    pub ledger: CostLedger,
    /// Encode-cache hits observed by the tile accelerator.
    pub cache_hits: u64,
    /// RN realizations (epochs) the tile accelerator consumed.
    pub rn_epochs: u64,
    /// Per-row write-wear summary of the accelerator's stream region.
    pub stream_wear: WearSummary,
    /// Bit-flip faults the fault injector actually fired on this tile.
    pub faults: u64,
    /// This tile's share of compile time (emit/optimize/plan/bind).
    pub compile: CompileStats,
    /// The tile's template-cache outcome (`None` on uncached runs).
    pub cache: Option<CacheOutcome>,
}

/// Aggregate statistics of one tiled SC-ReRAM kernel run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScRunStats {
    /// Hardware-cost totals, merged deterministically across tiles.
    pub ledger: CostLedger,
    /// Total encode-cache hits across tile accelerators.
    pub encode_cache_hits: u64,
    /// Total RN realizations consumed across tile accelerators — the
    /// direct measure of how much the kernel's refresh policy reuses
    /// random-number rows.
    pub rn_epochs: u64,
    /// Number of tiles executed.
    pub tiles: usize,
    /// The measured pipeline behaviour (stage occupancy, initiation
    /// interval) when the run used [`Schedule::Pipelined`]; `None` under
    /// [`Schedule::PerTile`].
    pub pipeline: Option<PipelineReport>,
    /// Scouting operations per output pixel
    /// ([`CostLedger::scout_ops`] over the pixel count) — the paper's
    /// dominant cost metric and what the program optimizer minimizes.
    pub scout_ops_per_pixel: f64,
    /// Stream-region write-wear merged across tile accelerators: `max` is
    /// the hottest physical row anywhere in the run, `total`/`rows` sum,
    /// so [`WearSummary::max_mean_ratio`] measures how evenly the run's
    /// writes spread (1.0 = perfectly level). Wear-leveling
    /// ([`ScReramConfig::wear_leveling`]) exists to push this toward 1.
    pub stream_wear: WearSummary,
    /// Total bit-flip faults injected across tile accelerators (0 on
    /// fault-free runs).
    pub faults_injected: u64,
    /// Simulated energy/latency from replaying the run's recorded
    /// command stream through `nvsim` — ground truth measured from the
    /// *real* schedule, next to the analytic `ledger`. `None` unless
    /// [`ScReramConfig::trace_replay`] is set.
    pub replay: Option<ReplaySummary>,
    /// Where this run's host-side compile time went, summed across tiles:
    /// emitting programs, optimizing, planning, and (cached runs) taping
    /// value streams. The wall-clock the template cache exists to cut.
    pub compile: CompileStats,
    /// Template-cache outcome counts when the run used a plan cache
    /// ([`ScReramConfig::plan_cache`]); `None` on uncached runs.
    pub plan_cache: Option<PlanCacheRun>,
}

/// Derives the per-tile accelerator seed from a master seed. Tile 0 keeps
/// the master seed, so a single-tile run is identical to the untiled
/// flow.
#[must_use]
pub(crate) fn tile_seed(master: u64, tile: usize) -> u64 {
    master ^ (tile as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn tile_ranges(height: usize) -> Vec<Range<usize>> {
    (0..height.div_ceil(TILE_ROWS))
        .map(|t| t * TILE_ROWS..((t + 1) * TILE_ROWS).min(height))
        .collect()
}

/// Worker-thread count for tile jobs. `IMGPROC_TILE_THREADS` overrides
/// (useful to force the threaded path on single-core CI or to pin thread
/// counts); without the `parallel` feature everything is sequential.
fn tile_threads(jobs: usize) -> usize {
    #[cfg(feature = "parallel")]
    {
        std::env::var("IMGPROC_TILE_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
            .min(jobs)
    }
    #[cfg(not(feature = "parallel"))]
    {
        let _ = jobs;
        1
    }
}

/// Runs `worker` over every row tile of an output image of the given
/// `height`, returning tile outputs in tile order. The worker receives
/// `(tile_index, row_range)` and must be deterministic in those inputs.
/// (Production kernels go through [`run_tile_programs`]; this thinner
/// wrapper pins the tiling geometry and merge order in tests.)
#[cfg(test)]
fn run_row_tiles<W>(height: usize, worker: W) -> Result<Vec<TileOut>, ImgError>
where
    W: Fn(usize, Range<usize>) -> Result<TileOut, ImgError> + Sync,
{
    let ranges = tile_ranges(height);
    imsc::parallel::run_indexed_with(
        ranges.len(),
        tile_threads(ranges.len()),
        || (),
        |(), t| worker(t, ranges[t].clone()),
    )
}

/// Emits one tile's real [`Program`], attributing the emission time.
fn emit_fresh<E: TileEmitter>(
    emitter: &E,
    rows: Range<usize>,
    stats: &mut CompileStats,
) -> Program {
    let t0 = Instant::now();
    let mut p = Program::new();
    emitter.emit(rows, &mut p);
    stats.emit_ns += t0.elapsed().as_nanos() as u64;
    p
}

fn compile_tile<E: TileEmitter>(
    emitter: &E,
    rows: Range<usize>,
    opt: OptSpec,
    stats: &mut CompileStats,
) -> Result<Arc<Template>, ImgError> {
    let program = emit_fresh(emitter, rows, stats);
    Ok(Arc::new(Template::compile_timed(
        program, opt.level, opt.policy, stats,
    )?))
}

/// One tile's template-cache transaction. With a frame digest, the
/// fully-bound fast path is probed first: a recurring (kernel, rows,
/// digest, config) key returns its (template, bindings) pair with no
/// emitter run at all. Otherwise the emitter runs once as a tape and
/// the template key either reuses the resident template (hit),
/// compiles-and-inserts (miss), or compiles without inserting
/// (hash-collision fallback); the resolved pair is then registered
/// under the digest for the frames that follow. Tape, digest and
/// lookup cost land in `stats.bind_ns`; miss/fallback compilation in
/// the emit/optimize/plan fields.
fn cached_template<E: TileEmitter>(
    cache: &PlanCache,
    emitter: &E,
    rows: Range<usize>,
    opt: OptSpec,
    substrate: u64,
    digest: Option<u64>,
    stats: &mut CompileStats,
) -> Result<(Arc<BoundEntry>, CacheOutcome), ImgError> {
    let t0 = Instant::now();
    let bound_key = digest.map(|digest| BoundKey {
        kernel: emitter.kernel(),
        rows: (rows.start as u32, rows.end as u32),
        digest,
        level: opt.level,
        policy: opt.policy,
        substrate,
    });
    if let Some(key) = &bound_key {
        if let Some(entry) = cache.lookup_bound(key) {
            stats.bind_ns += t0.elapsed().as_nanos() as u64;
            return Ok((entry, CacheOutcome::Hit));
        }
    }
    let mut tape = ValueTape::new();
    emitter.emit(rows.clone(), &mut tape);
    let key = TemplateKey {
        kernel: emitter.kernel(),
        structure: tape.structure_hash(),
        level: opt.level,
        policy: opt.policy,
        substrate,
        // Value-dependent optimizer levels bake the source values into
        // the compiled program, so the key carries the exact value
        // pattern; Off binds values into holes and one template serves
        // them all.
        values: if opt.level.value_dependent() {
            tape.value_hash()
        } else {
            0
        },
    };
    let found = cache.lookup(&key);
    stats.bind_ns += t0.elapsed().as_nanos() as u64;
    let (tpl, outcome) = match found {
        Some(tpl) if tpl.accepts(&tape) => (tpl, CacheOutcome::Hit),
        // 64-bit hash collision: compile this tile from scratch and
        // leave the resident entry alone.
        Some(_) => (
            compile_tile(emitter, rows, opt, stats)?,
            CacheOutcome::Fallback,
        ),
        None => {
            let tpl = compile_tile(emitter, rows, opt, stats)?;
            cache.insert(key, Arc::clone(&tpl));
            (tpl, CacheOutcome::Miss)
        }
    };
    // The pair is correct for this digest on every outcome (fallbacks
    // included — the template was compiled from this very tile), so the
    // fast path always learns it.
    let entry = Arc::new(BoundEntry::new(tpl, tape.into_bindings())?);
    if let Some(key) = bound_key {
        cache.insert_bound(key, Arc::clone(&entry));
    }
    Ok((entry, outcome))
}

/// Executes one row tile end to end: build the tile's accelerator,
/// resolve its program (template-cache transaction or fresh
/// emit + optimize + plan), run it, and package the observables. The
/// shared tile body of the per-tile schedule's single-frame and batched
/// paths; `slot` is the trace sink's dispatch slot (the tile's position
/// in the run's drain order).
#[allow(clippy::too_many_arguments)]
fn exec_tile<E: TileEmitter>(
    arena: &mut ExecArena,
    cfg: &ScReramConfig,
    emitter: &E,
    tile: usize,
    range: Range<usize>,
    opt: OptSpec,
    substrate: u64,
    digest: Option<u64>,
    sink: Option<&SinkHandle>,
    slot: usize,
) -> Result<TileOut, ImgError> {
    let mut acc = cfg.build_for_tile_with(tile, emitter.default_policy())?;
    let mut compile = CompileStats::default();
    let (values, outcome) = match cfg.plan_cache.as_deref() {
        Some(cache) => {
            let (entry, outcome) =
                cached_template(cache, emitter, range, opt, substrate, digest, &mut compile)?;
            (
                entry
                    .template()
                    .execute_in(&mut acc, entry.bindings(), arena)?,
                Some(outcome),
            )
        }
        None => {
            let program = opt.apply_timed(emit_fresh(emitter, range, &mut compile), &mut compile);
            let t0 = Instant::now();
            let plan = program.plan()?;
            compile.plan_ns += t0.elapsed().as_nanos() as u64;
            (plan.execute_in(&mut acc, arena)?, None)
        }
    };
    // Drain this tile's sub-trace as soon as the tile retires (workers
    // may finish out of order, the sink reorders).
    if let Some(s) = sink {
        s.drain_into(slot, &mut acc);
    }
    Ok(tile_out(values, &acc, compile, outcome))
}

/// Runs one emitted [`Program`] per row tile under the configuration's
/// [`Schedule`], building tile accelerators from `cfg` (the emitter's
/// [`TileEmitter::default_policy`] supplies the kernel's RN refresh
/// policy). Returns tile outputs in tile order plus the run-wide
/// observables. With a template cache configured, tiles tape-and-bind
/// instead of compiling (see the module docs) — bit-identical results
/// either way.
///
/// Fault-domain options ([`ScReramConfig::retirement`],
/// [`ScReramConfig::array_faults`]) are meaningful only when slices are
/// dealt across arrays, so they require [`Schedule::Pipelined`]; under
/// [`Schedule::PerTile`] they are rejected rather than silently ignored.
pub(crate) fn run_tile_programs<E: TileEmitter>(
    height: usize,
    cfg: &ScReramConfig,
    emitter: E,
) -> Result<(Vec<TileOut>, RunMeta), ImgError> {
    let opt = cfg.opt_spec(emitter.default_policy());
    let domains = cfg.retirement.is_some() || cfg.array_faults.is_some();
    let sink = if cfg.trace_replay {
        Some(SinkHandle::for_stream_len(cfg.stream_len)?)
    } else {
        None
    };
    match cfg.schedule {
        Schedule::PerTile => {
            if domains {
                return Err(ImgError::InvalidParameter(
                    "fault-domain options (retirement, per-array faults) need a pipelined schedule",
                ));
            }
            let ranges = tile_ranges(height);
            let sink_ref = sink.as_ref();
            let substrate = cfg.template_substrate_sig();
            // One frame digest for the whole run (frame-level cost, so
            // it lands in the run-wide breakdown, not a tile's).
            let mut frame_compile = CompileStats::default();
            let digest = cfg.plan_cache.as_deref().and_then(|_| {
                let t0 = Instant::now();
                let d = emitter.frame_digest();
                frame_compile.bind_ns += t0.elapsed().as_nanos() as u64;
                d
            });
            let emitter = &emitter;
            let tiles = imsc::parallel::run_indexed_with(
                ranges.len(),
                tile_threads(ranges.len()),
                ExecArena::new,
                |arena, t| {
                    exec_tile(
                        arena,
                        cfg,
                        emitter,
                        t,
                        ranges[t].clone(),
                        opt,
                        substrate,
                        digest,
                        sink_ref,
                        t,
                    )
                },
            )?;
            let replay = sink.map(|s| s.finish()).transpose()?;
            Ok((
                tiles,
                RunMeta {
                    pipeline: None,
                    replay,
                    compile: frame_compile,
                },
            ))
        }
        Schedule::Pipelined { arrays } => run_pipelined(height, arrays, cfg, opt, sink, &emitter),
    }
}

/// Run-wide observables that ride alongside the tile outputs: the
/// measured pipeline report (pipelined schedules), the nvsim replay
/// summary (trace-replay runs), and frame-level compile time not
/// attributable to one tile (the pipelined path's whole-frame emit /
/// partition / optimize, or its cached path's tape-and-compile pass).
#[derive(Debug, Default)]
pub(crate) struct RunMeta {
    pub pipeline: Option<PipelineReport>,
    pub replay: Option<ReplaySummary>,
    pub compile: CompileStats,
}

/// The optimizer setting one kernel run applies to its emitted
/// programs: the effective [`Optimize`] level plus the RN refresh
/// policy the programs will execute under (the optimizer's encode
/// rewrites are policy-dependent).
#[derive(Debug, Clone, Copy)]
pub(crate) struct OptSpec {
    pub level: Optimize,
    pub policy: RnRefreshPolicy,
}

impl OptSpec {
    /// Optimizes one emitted program (the identity at
    /// [`Optimize::Off`]), attributing the rewrite time.
    fn apply_timed(self, program: Program, stats: &mut CompileStats) -> Program {
        if self.level == Optimize::Off {
            return program;
        }
        let t0 = Instant::now();
        let optimized = optimize(&program, self.level, self.policy).0;
        stats.optimize_ns += t0.elapsed().as_nanos() as u64;
        optimized
    }
}

fn tile_out(
    values: Vec<f64>,
    acc: &Accelerator,
    compile: CompileStats,
    cache: Option<CacheOutcome>,
) -> TileOut {
    TileOut {
        pixels: values.into_iter().map(prob_to_pixel).collect(),
        ledger: *acc.ledger(),
        cache_hits: acc.encode_cache_hits(),
        rn_epochs: acc.rn_epoch(),
        stream_wear: acc.stream_wear(),
        faults: acc.faults_injected(),
        compile,
        cache,
    }
}

/// The [`Schedule::Pipelined`] path: emit one logical program for the
/// whole image, partition it at tile-shaped output boundaries (clean
/// cuts by construction — no register lives across a pixel), and hand
/// the slices to the cross-array scheduler with per-tile accelerators.
/// With a template cache, the whole-frame emission is skipped entirely:
/// each tile-shaped range tapes and binds its own template — legal
/// because slices are op-identical to per-tile emission (the partition
/// invariant the pipelined-parity tests pin), so per-tile and pipelined
/// runs share one template population. With fault-domain options
/// configured, the scheduler runs in retirement mode: per-array health
/// is tracked, arrays past the policy threshold are retired mid-run, and
/// their slices reschedule onto survivors (visible as
/// `PipelineReport::retired_arrays` / `rescheduled_slices`).
fn run_pipelined<E: TileEmitter>(
    height: usize,
    arrays: usize,
    cfg: &ScReramConfig,
    opt: OptSpec,
    sink: Option<SinkHandle>,
    emitter: &E,
) -> Result<(Vec<TileOut>, RunMeta), ImgError> {
    if arrays == 0 {
        return Err(ImgError::InvalidParameter(
            "a pipelined schedule needs at least one array",
        ));
    }
    let mut compile = CompileStats::default();
    let units = compile_pipeline_units(height, cfg, opt, emitter, &mut compile)?;
    if units.is_empty() {
        return Ok((Vec::new(), RunMeta::default()));
    }
    let execs: Vec<SliceExec<'_>> = units.execs();
    let mut scheduler = PipelineScheduler::new(arrays);
    if let Some(s) = &sink {
        scheduler = scheduler.sink(s.clone());
    }
    let run = if cfg.retirement.is_some() || cfg.array_faults.is_some() {
        scheduler
            .run_with_domains_exec(
                &execs,
                |tile, array| cfg.build_for_slice(tile, array, emitter.default_policy()),
                cfg.retirement.unwrap_or_default(),
            )?
            .run
    } else {
        scheduler.run_exec(&execs, |t| {
            cfg.build_for_tile_with(t, emitter.default_policy())
        })?
    };
    let tiles = run
        .slices
        .into_iter()
        .zip(units.outcomes)
        .map(|(s, outcome)| slice_tile_out(s, outcome))
        .collect();
    let replay = sink.map(|s| s.finish()).transpose()?;
    Ok((
        tiles,
        RunMeta {
            pipeline: Some(run.report),
            replay,
            compile,
        },
    ))
}

/// One frame's compiled pipeline slices: exactly one of `bound` /
/// `fresh` is populated (cached vs. fresh compilation); `execs` chains
/// them in tile order so both borrows stay alive for the scheduler.
struct PipelineUnits {
    bound: Vec<Arc<BoundEntry>>,
    fresh: Vec<Program>,
    outcomes: Vec<Option<CacheOutcome>>,
}

impl PipelineUnits {
    fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Slices in tile order, one per range.
    fn execs(&self) -> Vec<SliceExec<'_>> {
        self.bound
            .iter()
            .map(|e| SliceExec::Bound(e.template(), e.bindings()))
            .chain(self.fresh.iter().map(SliceExec::Fresh))
            .collect()
    }
}

/// Compiles one frame's tile-shaped pipeline slices — the template-cache
/// transaction per range when a cache is attached, otherwise one
/// whole-frame emission partitioned at tile boundaries and optimized per
/// slice. Shared by the single-frame pipelined path and the cross-frame
/// batch runner.
fn compile_pipeline_units<E: TileEmitter>(
    height: usize,
    cfg: &ScReramConfig,
    opt: OptSpec,
    emitter: &E,
    compile: &mut CompileStats,
) -> Result<PipelineUnits, ImgError> {
    let ranges = tile_ranges(height);
    if ranges.is_empty() {
        return Ok(PipelineUnits {
            bound: Vec::new(),
            fresh: Vec::new(),
            outcomes: Vec::new(),
        });
    }
    let (bound, fresh, outcomes) = match cfg.plan_cache.as_deref() {
        Some(cache) => {
            let substrate = cfg.template_substrate_sig();
            let t0 = Instant::now();
            let digest = emitter.frame_digest();
            compile.bind_ns += t0.elapsed().as_nanos() as u64;
            let mut units = Vec::with_capacity(ranges.len());
            let mut outcomes = Vec::with_capacity(ranges.len());
            for r in &ranges {
                let (entry, outcome) =
                    cached_template(cache, emitter, r.clone(), opt, substrate, digest, compile)?;
                outcomes.push(Some(outcome));
                units.push(entry);
            }
            (units, Vec::new(), outcomes)
        }
        None => {
            let logical = emit_fresh(emitter, 0..height, compile);
            debug_assert_eq!(
                logical.outputs() % height,
                0,
                "kernels emit a fixed output count per row"
            );
            let per_row = logical.outputs() / height;
            let counts: Vec<usize> = ranges.iter().map(|r| r.len() * per_row).collect();
            // Partition first, optimize each slice after: the slices
            // are op-identical to per-tile emission, so the
            // (deterministic) optimizer makes the same decisions on
            // both paths and pipelined results stay bit-identical to
            // per-tile ones at every level.
            let slices = sched::partition_by_outputs(&logical, &counts)?
                .into_iter()
                .map(|s| opt.apply_timed(s, compile))
                .collect();
            (Vec::new(), slices, vec![None; ranges.len()])
        }
    };
    Ok(PipelineUnits {
        bound,
        fresh,
        outcomes,
    })
}

fn slice_tile_out(s: sched::SliceOut, outcome: Option<CacheOutcome>) -> TileOut {
    TileOut {
        pixels: s.outputs.into_iter().map(prob_to_pixel).collect(),
        ledger: s.ledger,
        cache_hits: s.cache_hits,
        rn_epochs: s.rn_epochs,
        stream_wear: s.stream_wear,
        faults: s.faults_injected,
        compile: CompileStats {
            plan_ns: s.plan_ns,
            ..CompileStats::default()
        },
        cache: outcome,
    }
}

/// One frame of a coalesced batch run: its output height and its
/// program emitter.
pub(crate) struct BatchJob<E> {
    /// Output-image height (decides the frame's tile ranges).
    pub height: usize,
    /// The frame's kernel emitter.
    pub emitter: E,
}

/// Runs a batch of frames as *one* scheduling pass — the service
/// frontend's coalescing primitive.
///
/// Under [`Schedule::PerTile`] every frame's tiles join a single work
/// queue (`imsc::parallel::run_indexed_with` over all `(frame, tile)`
/// pairs). Under [`Schedule::Pipelined`] every frame's tile-shaped
/// slices are compiled (sharing the attached [`PlanCache`] across
/// frames — identical shapes hit the same templates) and fed to **one**
/// [`PipelineScheduler`] run over the array pool, so the pipeline stays
/// full across request boundaries instead of draining per frame.
///
/// Per-frame results are bit-identical to running each frame alone:
/// accelerator seeds derive from the frame-local tile index, never from
/// the batch position. Two batch-level caveats: the measured
/// [`PipelineReport`] describes the whole batch (each frame's
/// [`RunMeta`] carries a copy), and with fault-domain options
/// ([`ScReramConfig::array_faults`] / retirement) the slice → array
/// placement depends on batch composition, so per-array fault draws do
/// too — degradation stays graceful, but bit-identity to solo runs is
/// only guaranteed on fault-free substrates.
///
/// Trace replay is not supported here (one nvsim stitch per run cannot
/// be attributed back to frames); callers fall back to per-frame runs.
pub(crate) fn run_batch_programs<E: TileEmitter>(
    jobs: &[BatchJob<E>],
    cfg: &ScReramConfig,
) -> Result<Vec<(Vec<TileOut>, RunMeta)>, ImgError> {
    if cfg.trace_replay {
        return Err(ImgError::InvalidParameter(
            "trace replay is not supported on coalesced batch runs",
        ));
    }
    if jobs.is_empty() {
        return Ok(Vec::new());
    }
    let domains = cfg.retirement.is_some() || cfg.array_faults.is_some();
    match cfg.schedule {
        Schedule::PerTile => {
            if domains {
                return Err(ImgError::InvalidParameter(
                    "fault-domain options (retirement, per-array faults) need a pipelined schedule",
                ));
            }
            run_batch_per_tile(jobs, cfg)
        }
        Schedule::Pipelined { arrays } => {
            if arrays == 0 {
                return Err(ImgError::InvalidParameter(
                    "a pipelined schedule needs at least one array",
                ));
            }
            run_batch_pipelined(jobs, arrays, cfg)
        }
    }
}

fn run_batch_per_tile<E: TileEmitter>(
    jobs: &[BatchJob<E>],
    cfg: &ScReramConfig,
) -> Result<Vec<(Vec<TileOut>, RunMeta)>, ImgError> {
    let substrate = cfg.template_substrate_sig();
    // Frame digests and per-frame optimizer specs, once per frame.
    let mut metas: Vec<RunMeta> = jobs.iter().map(|_| RunMeta::default()).collect();
    let mut digests = Vec::with_capacity(jobs.len());
    let mut opts = Vec::with_capacity(jobs.len());
    for (job, meta) in jobs.iter().zip(&mut metas) {
        opts.push(cfg.opt_spec(job.emitter.default_policy()));
        digests.push(cfg.plan_cache.as_deref().and_then(|_| {
            let t0 = Instant::now();
            let d = job.emitter.frame_digest();
            meta.compile.bind_ns += t0.elapsed().as_nanos() as u64;
            d
        }));
    }
    // One flat unit list over every frame's tiles, frame-major.
    struct Unit {
        job: usize,
        tile: usize,
        range: Range<usize>,
    }
    let units: Vec<Unit> = jobs
        .iter()
        .enumerate()
        .flat_map(|(j, job)| {
            tile_ranges(job.height)
                .into_iter()
                .enumerate()
                .map(move |(t, range)| Unit {
                    job: j,
                    tile: t,
                    range,
                })
        })
        .collect();
    let outs = imsc::parallel::run_indexed_with(
        units.len(),
        tile_threads(units.len()),
        ExecArena::new,
        |arena, i| {
            let u = &units[i];
            exec_tile(
                arena,
                cfg,
                &jobs[u.job].emitter,
                u.tile,
                u.range.clone(),
                opts[u.job],
                substrate,
                digests[u.job],
                None,
                i,
            )
        },
    )?;
    // Units are frame-major and in tile order, so splitting by per-frame
    // tile counts reassembles each frame's tiles exactly.
    let mut outs = outs.into_iter();
    Ok(jobs
        .iter()
        .zip(metas)
        .map(|(job, meta)| {
            let tiles = tile_ranges(job.height).len();
            ((&mut outs).take(tiles).collect(), meta)
        })
        .collect())
}

fn run_batch_pipelined<E: TileEmitter>(
    jobs: &[BatchJob<E>],
    arrays: usize,
    cfg: &ScReramConfig,
) -> Result<Vec<(Vec<TileOut>, RunMeta)>, ImgError> {
    // Compile every frame's slices (template-cache hits are shared
    // across the batch) and map global slice index → (frame, local
    // tile) so accelerator seeds stay frame-local.
    let mut per_job = Vec::with_capacity(jobs.len());
    let mut compiles = Vec::with_capacity(jobs.len());
    let mut owners: Vec<(usize, usize)> = Vec::new();
    for (j, job) in jobs.iter().enumerate() {
        let opt = cfg.opt_spec(job.emitter.default_policy());
        let mut compile = CompileStats::default();
        let units = compile_pipeline_units(job.height, cfg, opt, &job.emitter, &mut compile)?;
        owners.extend((0..units.outcomes.len()).map(|t| (j, t)));
        per_job.push(units);
        compiles.push(compile);
    }
    let execs: Vec<SliceExec<'_>> = per_job.iter().flat_map(PipelineUnits::execs).collect();
    if execs.is_empty() {
        return Ok(jobs
            .iter()
            .zip(compiles)
            .map(|(_, compile)| {
                (
                    Vec::new(),
                    RunMeta {
                        compile,
                        ..RunMeta::default()
                    },
                )
            })
            .collect());
    }
    let scheduler = PipelineScheduler::new(arrays);
    let run = if cfg.retirement.is_some() || cfg.array_faults.is_some() {
        scheduler
            .run_with_domains_exec(
                &execs,
                |slice, array| {
                    let (j, t) = owners[slice];
                    cfg.build_for_slice(t, array, jobs[j].emitter.default_policy())
                },
                cfg.retirement.unwrap_or_default(),
            )?
            .run
    } else {
        scheduler.run_exec(&execs, |slice| {
            let (j, t) = owners[slice];
            cfg.build_for_tile_with(t, jobs[j].emitter.default_policy())
        })?
    };
    // Split the batch's slice outputs back into frames (slices come back
    // in dispatch order, which is frame-major by construction).
    let mut slices = run.slices.into_iter();
    Ok(per_job
        .into_iter()
        .zip(compiles)
        .map(|(units, compile)| {
            let tiles = units
                .outcomes
                .iter()
                .map(|outcome| {
                    let s = slices.next().expect("one slice out per dispatched slice");
                    slice_tile_out(s, *outcome)
                })
                .collect();
            (
                tiles,
                RunMeta {
                    pipeline: Some(run.report),
                    replay: None,
                    compile,
                },
            )
        })
        .collect())
}

/// Assembles tile outputs into `(pixels, stats)`, merging ledgers in tile
/// order.
pub(crate) fn assemble(tiles: Vec<TileOut>, meta: RunMeta) -> (Vec<u8>, ScRunStats) {
    let mut pixels = Vec::with_capacity(tiles.iter().map(|t| t.pixels.len()).sum());
    let mut stats = ScRunStats {
        tiles: tiles.len(),
        pipeline: meta.pipeline,
        replay: meta.replay,
        compile: meta.compile,
        ..ScRunStats::default()
    };
    let mut cache_run: Option<PlanCacheRun> = None;
    for tile in tiles {
        pixels.extend_from_slice(&tile.pixels);
        stats.ledger.merge(&tile.ledger);
        stats.encode_cache_hits += tile.cache_hits;
        stats.rn_epochs += tile.rn_epochs;
        stats.stream_wear.merge(&tile.stream_wear);
        stats.faults_injected += tile.faults;
        stats.compile.merge(&tile.compile);
        if let Some(outcome) = tile.cache {
            cache_run
                .get_or_insert_with(PlanCacheRun::default)
                .count(outcome);
        }
    }
    stats.plan_cache = cache_run;
    if !pixels.is_empty() {
        stats.scout_ops_per_pixel = stats.ledger.scout_ops() as f64 / pixels.len() as f64;
    }
    (pixels, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant_tile(t: usize, rows: Range<usize>) -> Result<TileOut, ImgError> {
        Ok(TileOut {
            pixels: rows.map(|r| (r * 10 + t) as u8).collect(),
            ledger: CostLedger {
                adc_samples: 1,
                ..CostLedger::default()
            },
            cache_hits: t as u64,
            rn_epochs: 1,
            stream_wear: WearSummary::default(),
            faults: 0,
            compile: CompileStats::default(),
            cache: None,
        })
    }

    /// A kernel emitting nothing — exercises the scheduling plumbing.
    struct EmptyEmit;

    impl TileEmitter for EmptyEmit {
        fn kernel(&self) -> &'static str {
            "empty"
        }

        fn default_policy(&self) -> RnRefreshPolicy {
            RnRefreshPolicy::PerEncode
        }

        fn emit<S: ProgramSink>(&self, _rows: Range<usize>, _sink: &mut S) {}
    }

    #[test]
    fn tiles_cover_the_height_in_order() {
        let outs = run_row_tiles(19, constant_tile).unwrap();
        assert_eq!(outs.len(), 3);
        let (pixels, stats) = assemble(outs, RunMeta::default());
        assert_eq!(pixels.len(), 19);
        assert_eq!(pixels[0], 0); // row 0, tile 0
        assert_eq!(pixels[8], 81); // row 8, tile 1
        assert_eq!(stats.tiles, 3);
        assert_eq!(stats.ledger.adc_samples, 3);
        assert_eq!(stats.encode_cache_hits, 1 + 2);
        assert_eq!(stats.rn_epochs, 3);
        assert!(stats.pipeline.is_none());
        assert!(stats.plan_cache.is_none());
    }

    #[test]
    fn errors_propagate() {
        let r = run_row_tiles(16, |t, rows| {
            if t == 1 {
                Err(ImgError::InvalidParameter("boom"))
            } else {
                constant_tile(t, rows)
            }
        });
        assert!(r.is_err());
    }

    #[test]
    fn tile_seed_is_stable_and_tile0_is_master() {
        assert_eq!(tile_seed(42, 0), 42);
        assert_ne!(tile_seed(42, 1), tile_seed(42, 2));
        assert_eq!(tile_seed(7, 3), tile_seed(7, 3));
    }

    #[test]
    fn zero_arrays_is_rejected() {
        let cfg = ScReramConfig::new(256, 1).with_schedule(Schedule::Pipelined { arrays: 0 });
        let err = run_tile_programs(8, &cfg, EmptyEmit).unwrap_err();
        assert!(matches!(err, ImgError::InvalidParameter(_)));
    }

    #[test]
    fn domain_options_require_pipelining() {
        let cfg = ScReramConfig::new(256, 1).with_retirement(imsc::RetirementPolicy::default());
        let err = run_tile_programs(8, &cfg, EmptyEmit).unwrap_err();
        assert!(matches!(err, ImgError::InvalidParameter(_)));
    }

    #[test]
    fn plan_cache_run_rates() {
        let run = PlanCacheRun {
            hits: 9,
            misses: 1,
            fallbacks: 0,
        };
        assert_eq!(run.lookups(), 10);
        assert!((run.hit_rate() - 0.9).abs() < 1e-12);
        assert_eq!(PlanCacheRun::default().hit_rate(), 0.0);
    }

    #[test]
    fn default_schedule_is_per_tile() {
        assert_eq!(Schedule::default(), Schedule::PerTile);
    }
}
