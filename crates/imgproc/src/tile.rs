//! Deterministic program scheduling across row tiles for the SC-ReRAM
//! image kernels.
//!
//! The in-memory kernels are embarrassingly parallel across pixels, but a
//! hardware accelerator instance is stateful (TRNG, row allocator, cost
//! ledger). The tiling layer therefore splits the *output* image into
//! fixed-height row tiles and runs one accelerator instance per tile —
//! mirroring how a multi-array deployment shards a frame across banks
//! (cf. `imsc::pipeline`). Tile geometry and per-tile seeds are pure
//! functions of the image size and the configured master seed, so results
//! are bit-identical whether tiles execute sequentially or on a thread
//! pool, and per-tile [`CostLedger`]s merge in tile order so accumulated
//! hardware-cost numbers (the Table III / Fig. 4–5 inputs) are unchanged
//! by parallelism.
//!
//! Since the program-IR refactor, the kernels are *program emitters*, and
//! [`run_tile_programs`] schedules the emitted programs under one of two
//! [`Schedule`]s:
//!
//! * [`Schedule::PerTile`] — one [`imsc::Program`] per tile, planned and
//!   executed whole on the tile's accelerator. With the `parallel`
//!   feature, whole tiles run on the deterministic work queue
//!   (`imsc::parallel`, the machinery this module originally owned,
//!   since hoisted into core), one pooled [`ExecArena`] per worker so
//!   per-tile re-planning stops reallocating the register file.
//! * [`Schedule::Pipelined`] — one *logical* program for the whole image,
//!   partitioned at tile-shaped output boundaries by
//!   `imsc::program::sched` and executed by the cross-array
//!   [`PipelineScheduler`]: slices flow through the ❶ SBS / ❷ arithmetic
//!   / ❸ S2B stage workers with a bounded inter-stage queue and at most
//!   `arrays` accelerator instances in flight. The slice programs are
//!   op-identical to per-tile emission and each slice's accelerator uses
//!   the same per-tile seed, so pixels, ledgers, and RN epochs are
//!   bit-identical to the per-tile path — the pipelined run additionally
//!   reports measured stage occupancy and initiation interval
//!   ([`ScRunStats::pipeline`]).

use crate::error::ImgError;
use crate::scbackend::{prob_to_pixel, ScReramConfig};
use imsc::cost::CostLedger;
use imsc::engine::Accelerator;
use imsc::instrument::{ReplaySummary, SinkHandle};
use imsc::program::sched::{self, PipelineReport, PipelineScheduler};
use imsc::program::Program;
use imsc::{optimize, ExecArena, Optimize, RnRefreshPolicy, WearSummary};

/// Output rows per tile. Small enough to parallelize modest images,
/// large enough to amortize accelerator construction per tile.
pub(crate) const TILE_ROWS: usize = 8;

/// How a kernel's emitted programs are scheduled onto accelerators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// One whole program per row tile, one accelerator per tile —
    /// data-parallel across tiles (the default).
    #[default]
    PerTile,
    /// Cross-array pipelining: tile-shaped slices of one logical program
    /// flow through the ❶/❷/❸ stage workers with at most `arrays`
    /// accelerator instances in flight. Bit-identical results to
    /// [`Schedule::PerTile`], plus a measured [`PipelineReport`].
    Pipelined {
        /// Accelerator instances (arrays) in flight; must be nonzero.
        arrays: usize,
    },
}

/// The result of processing one row tile.
#[derive(Debug, Clone)]
pub(crate) struct TileOut {
    /// Row-major pixels of this tile (`rows.len() * width` entries).
    pub pixels: Vec<u8>,
    /// The tile accelerator's accumulated hardware-cost ledger.
    pub ledger: CostLedger,
    /// Encode-cache hits observed by the tile accelerator.
    pub cache_hits: u64,
    /// RN realizations (epochs) the tile accelerator consumed.
    pub rn_epochs: u64,
    /// Per-row write-wear summary of the accelerator's stream region.
    pub stream_wear: WearSummary,
    /// Bit-flip faults the fault injector actually fired on this tile.
    pub faults: u64,
}

/// Aggregate statistics of one tiled SC-ReRAM kernel run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScRunStats {
    /// Hardware-cost totals, merged deterministically across tiles.
    pub ledger: CostLedger,
    /// Total encode-cache hits across tile accelerators.
    pub encode_cache_hits: u64,
    /// Total RN realizations consumed across tile accelerators — the
    /// direct measure of how much the kernel's refresh policy reuses
    /// random-number rows.
    pub rn_epochs: u64,
    /// Number of tiles executed.
    pub tiles: usize,
    /// The measured pipeline behaviour (stage occupancy, initiation
    /// interval) when the run used [`Schedule::Pipelined`]; `None` under
    /// [`Schedule::PerTile`].
    pub pipeline: Option<PipelineReport>,
    /// Scouting operations per output pixel
    /// ([`CostLedger::scout_ops`] over the pixel count) — the paper's
    /// dominant cost metric and what the program optimizer minimizes.
    pub scout_ops_per_pixel: f64,
    /// Stream-region write-wear merged across tile accelerators: `max` is
    /// the hottest physical row anywhere in the run, `total`/`rows` sum,
    /// so [`WearSummary::max_mean_ratio`] measures how evenly the run's
    /// writes spread (1.0 = perfectly level). Wear-leveling
    /// ([`ScReramConfig::wear_leveling`]) exists to push this toward 1.
    pub stream_wear: WearSummary,
    /// Total bit-flip faults injected across tile accelerators (0 on
    /// fault-free runs).
    pub faults_injected: u64,
    /// Simulated energy/latency from replaying the run's recorded
    /// command stream through `nvsim` — ground truth measured from the
    /// *real* schedule, next to the analytic `ledger`. `None` unless
    /// [`ScReramConfig::trace_replay`] is set.
    pub replay: Option<ReplaySummary>,
}

/// Derives the per-tile accelerator seed from a master seed. Tile 0 keeps
/// the master seed, so a single-tile run is identical to the untiled
/// flow.
#[must_use]
pub(crate) fn tile_seed(master: u64, tile: usize) -> u64 {
    master ^ (tile as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn tile_ranges(height: usize) -> Vec<std::ops::Range<usize>> {
    (0..height.div_ceil(TILE_ROWS))
        .map(|t| t * TILE_ROWS..((t + 1) * TILE_ROWS).min(height))
        .collect()
}

/// Worker-thread count for tile jobs. `IMGPROC_TILE_THREADS` overrides
/// (useful to force the threaded path on single-core CI or to pin thread
/// counts); without the `parallel` feature everything is sequential.
fn tile_threads(jobs: usize) -> usize {
    #[cfg(feature = "parallel")]
    {
        std::env::var("IMGPROC_TILE_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
            .min(jobs)
    }
    #[cfg(not(feature = "parallel"))]
    {
        let _ = jobs;
        1
    }
}

/// Runs `worker` over every row tile of an output image of the given
/// `height`, returning tile outputs in tile order. The worker receives
/// `(tile_index, row_range)` and must be deterministic in those inputs.
/// (Production kernels go through [`run_tile_programs`]; this thinner
/// wrapper pins the tiling geometry and merge order in tests.)
#[cfg(test)]
fn run_row_tiles<W>(height: usize, worker: W) -> Result<Vec<TileOut>, ImgError>
where
    W: Fn(usize, std::ops::Range<usize>) -> Result<TileOut, ImgError> + Sync,
{
    let ranges = tile_ranges(height);
    imsc::parallel::run_indexed_with(
        ranges.len(),
        tile_threads(ranges.len()),
        || (),
        |(), t| worker(t, ranges[t].clone()),
    )
}

/// Runs one emitted [`Program`] per row tile under the configuration's
/// [`Schedule`], building tile accelerators from `cfg` (with
/// `kernel_default` as the kernel's RN refresh policy). `emit` produces
/// the program covering a row range (one output per pixel, row-major; it
/// must be deterministic in the range and independent of the tile index).
/// Returns tile outputs in tile order plus the measured pipeline report
/// when the schedule pipelines.
///
/// Fault-domain options ([`ScReramConfig::retirement`],
/// [`ScReramConfig::array_faults`]) are meaningful only when slices are
/// dealt across arrays, so they require [`Schedule::Pipelined`]; under
/// [`Schedule::PerTile`] they are rejected rather than silently ignored.
pub(crate) fn run_tile_programs<E>(
    height: usize,
    cfg: &ScReramConfig,
    kernel_default: RnRefreshPolicy,
    emit: E,
) -> Result<(Vec<TileOut>, RunMeta), ImgError>
where
    E: Fn(usize, std::ops::Range<usize>) -> Program + Sync,
{
    let opt = cfg.opt_spec(kernel_default);
    let domains = cfg.retirement.is_some() || cfg.array_faults.is_some();
    let sink = if cfg.trace_replay {
        Some(SinkHandle::for_stream_len(cfg.stream_len)?)
    } else {
        None
    };
    match cfg.schedule {
        Schedule::PerTile => {
            if domains {
                return Err(ImgError::InvalidParameter(
                    "fault-domain options (retirement, per-array faults) need a pipelined schedule",
                ));
            }
            let ranges = tile_ranges(height);
            let sink_ref = sink.as_ref();
            let tiles = imsc::parallel::run_indexed_with(
                ranges.len(),
                tile_threads(ranges.len()),
                ExecArena::new,
                |arena, t| -> Result<TileOut, ImgError> {
                    let mut acc = cfg.build_for_tile_with(t, kernel_default)?;
                    let program = opt.apply(emit(t, ranges[t].clone()));
                    let values = program.plan()?.execute_in(&mut acc, arena)?;
                    // Drain this tile's sub-trace as soon as the tile
                    // retires (dispatch slot = tile index); workers may
                    // finish out of order, the sink reorders.
                    if let Some(s) = sink_ref {
                        s.drain_into(t, &mut acc);
                    }
                    Ok(tile_out(values, &acc))
                },
            )?;
            let replay = sink.map(|s| s.finish()).transpose()?;
            Ok((
                tiles,
                RunMeta {
                    pipeline: None,
                    replay,
                },
            ))
        }
        Schedule::Pipelined { arrays } => {
            run_pipelined(height, arrays, cfg, kernel_default, opt, sink, &emit)
        }
    }
}

/// Run-wide observables that ride alongside the tile outputs: the
/// measured pipeline report (pipelined schedules) and the nvsim replay
/// summary (trace-replay runs).
#[derive(Debug, Default)]
pub(crate) struct RunMeta {
    pub pipeline: Option<PipelineReport>,
    pub replay: Option<ReplaySummary>,
}

/// The optimizer setting one kernel run applies to its emitted
/// programs: the effective [`Optimize`] level plus the RN refresh
/// policy the programs will execute under (the optimizer's encode
/// rewrites are policy-dependent).
#[derive(Debug, Clone, Copy)]
pub(crate) struct OptSpec {
    pub level: Optimize,
    pub policy: RnRefreshPolicy,
}

impl OptSpec {
    /// Optimizes one emitted program (the identity at
    /// [`Optimize::Off`]).
    fn apply(self, program: Program) -> Program {
        if self.level == Optimize::Off {
            return program;
        }
        optimize(&program, self.level, self.policy).0
    }
}

fn tile_out(values: Vec<f64>, acc: &Accelerator) -> TileOut {
    TileOut {
        pixels: values.into_iter().map(prob_to_pixel).collect(),
        ledger: *acc.ledger(),
        cache_hits: acc.encode_cache_hits(),
        rn_epochs: acc.rn_epoch(),
        stream_wear: acc.stream_wear(),
        faults: acc.faults_injected(),
    }
}

/// The [`Schedule::Pipelined`] path: emit one logical program for the
/// whole image, partition it at tile-shaped output boundaries (clean
/// cuts by construction — no register lives across a pixel), and hand
/// the slices to the cross-array scheduler with per-tile accelerators.
/// With fault-domain options configured, the scheduler runs in
/// retirement mode: per-array health is tracked, arrays past the policy
/// threshold are retired mid-run, and their slices reschedule onto
/// survivors (visible as `PipelineReport::retired_arrays` /
/// `rescheduled_slices`).
fn run_pipelined<E>(
    height: usize,
    arrays: usize,
    cfg: &ScReramConfig,
    kernel_default: RnRefreshPolicy,
    opt: OptSpec,
    sink: Option<SinkHandle>,
    emit: &E,
) -> Result<(Vec<TileOut>, RunMeta), ImgError>
where
    E: Fn(usize, std::ops::Range<usize>) -> Program + Sync,
{
    if arrays == 0 {
        return Err(ImgError::InvalidParameter(
            "a pipelined schedule needs at least one array",
        ));
    }
    let ranges = tile_ranges(height);
    if ranges.is_empty() {
        return Ok((Vec::new(), RunMeta::default()));
    }
    let logical = emit(0, 0..height);
    debug_assert_eq!(
        logical.outputs() % height,
        0,
        "kernels emit a fixed output count per row"
    );
    let per_row = logical.outputs() / height;
    let counts: Vec<usize> = ranges.iter().map(|r| r.len() * per_row).collect();
    // Partition first, optimize each slice after: the slices are
    // op-identical to per-tile emission, so the (deterministic)
    // optimizer makes the same decisions on both paths and pipelined
    // results stay bit-identical to per-tile ones at every level.
    let slices: Vec<Program> = sched::partition_by_outputs(&logical, &counts)?
        .into_iter()
        .map(|s| opt.apply(s))
        .collect();
    let mut scheduler = PipelineScheduler::new(arrays);
    if let Some(s) = &sink {
        scheduler = scheduler.sink(s.clone());
    }
    let run = if cfg.retirement.is_some() || cfg.array_faults.is_some() {
        scheduler
            .run_with_domains(
                &slices,
                |tile, array| cfg.build_for_slice(tile, array, kernel_default),
                cfg.retirement.unwrap_or_default(),
            )?
            .run
    } else {
        scheduler.run(&slices, |t| cfg.build_for_tile_with(t, kernel_default))?
    };
    let tiles = run
        .slices
        .into_iter()
        .map(|s| TileOut {
            pixels: s.outputs.into_iter().map(prob_to_pixel).collect(),
            ledger: s.ledger,
            cache_hits: s.cache_hits,
            rn_epochs: s.rn_epochs,
            stream_wear: s.stream_wear,
            faults: s.faults_injected,
        })
        .collect();
    let replay = sink.map(|s| s.finish()).transpose()?;
    Ok((
        tiles,
        RunMeta {
            pipeline: Some(run.report),
            replay,
        },
    ))
}

/// Assembles tile outputs into `(pixels, stats)`, merging ledgers in tile
/// order.
pub(crate) fn assemble(tiles: Vec<TileOut>, meta: RunMeta) -> (Vec<u8>, ScRunStats) {
    let mut pixels = Vec::with_capacity(tiles.iter().map(|t| t.pixels.len()).sum());
    let mut stats = ScRunStats {
        tiles: tiles.len(),
        pipeline: meta.pipeline,
        replay: meta.replay,
        ..ScRunStats::default()
    };
    for tile in tiles {
        pixels.extend_from_slice(&tile.pixels);
        stats.ledger.merge(&tile.ledger);
        stats.encode_cache_hits += tile.cache_hits;
        stats.rn_epochs += tile.rn_epochs;
        stats.stream_wear.merge(&tile.stream_wear);
        stats.faults_injected += tile.faults;
    }
    if !pixels.is_empty() {
        stats.scout_ops_per_pixel = stats.ledger.scout_ops() as f64 / pixels.len() as f64;
    }
    (pixels, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant_tile(t: usize, rows: std::ops::Range<usize>) -> Result<TileOut, ImgError> {
        Ok(TileOut {
            pixels: rows.map(|r| (r * 10 + t) as u8).collect(),
            ledger: CostLedger {
                adc_samples: 1,
                ..CostLedger::default()
            },
            cache_hits: t as u64,
            rn_epochs: 1,
            stream_wear: WearSummary::default(),
            faults: 0,
        })
    }

    #[test]
    fn tiles_cover_the_height_in_order() {
        let outs = run_row_tiles(19, constant_tile).unwrap();
        assert_eq!(outs.len(), 3);
        let (pixels, stats) = assemble(outs, RunMeta::default());
        assert_eq!(pixels.len(), 19);
        assert_eq!(pixels[0], 0); // row 0, tile 0
        assert_eq!(pixels[8], 81); // row 8, tile 1
        assert_eq!(stats.tiles, 3);
        assert_eq!(stats.ledger.adc_samples, 3);
        assert_eq!(stats.encode_cache_hits, 1 + 2);
        assert_eq!(stats.rn_epochs, 3);
        assert!(stats.pipeline.is_none());
    }

    #[test]
    fn errors_propagate() {
        let r = run_row_tiles(16, |t, rows| {
            if t == 1 {
                Err(ImgError::InvalidParameter("boom"))
            } else {
                constant_tile(t, rows)
            }
        });
        assert!(r.is_err());
    }

    #[test]
    fn tile_seed_is_stable_and_tile0_is_master() {
        assert_eq!(tile_seed(42, 0), 42);
        assert_ne!(tile_seed(42, 1), tile_seed(42, 2));
        assert_eq!(tile_seed(7, 3), tile_seed(7, 3));
    }

    #[test]
    fn zero_arrays_is_rejected() {
        let cfg = ScReramConfig::new(256, 1).with_schedule(Schedule::Pipelined { arrays: 0 });
        let err = run_tile_programs(8, &cfg, RnRefreshPolicy::PerEncode, |_, _| Program::new())
            .unwrap_err();
        assert!(matches!(err, ImgError::InvalidParameter(_)));
    }

    #[test]
    fn domain_options_require_pipelining() {
        let cfg = ScReramConfig::new(256, 1).with_retirement(imsc::RetirementPolicy::default());
        let err = run_tile_programs(8, &cfg, RnRefreshPolicy::PerEncode, |_, _| Program::new())
            .unwrap_err();
        assert!(matches!(err, ImgError::InvalidParameter(_)));
    }

    #[test]
    fn default_schedule_is_per_tile() {
        assert_eq!(Schedule::default(), Schedule::PerTile);
    }
}
