//! # imgproc — the paper's image-processing applications (§IV-A)
//!
//! Three kernels over four backends:
//!
//! | Application | SC kernel | Module |
//! |---|---|---|
//! | Image compositing `C = F·α + B·(1−α)` | directed MAJ blend | [`compositing`] |
//! | Bilinear interpolation (up-scaling) | nested MAJ blends (4-to-1 MUX) | [`bilinear`] |
//! | Image matting `α̂ = (I−B)/(F−B)` | XOR subtraction + CORDIV | [`matting`] |
//!
//! Backends:
//!
//! * **Software** — exact `f64` arithmetic, quantized to 8 bits.
//! * **SC-ReRAM** — the in-memory accelerator (`imsc`), optionally
//!   fault-injected (Table IV ✦ rows).
//! * **SC-CMOS** — functional CMOS SC with LFSR/Sobol SNGs (`sc-core`).
//! * **Binary CIM** — bit-serial in-memory binary arithmetic
//!   (`baselines::bincim`), optionally fault-injected (Table IV ✧ row).
//!
//! Since the paper names no dataset, [`synth`] provides deterministic
//! synthetic image families (gradients, checkerboards, blobs, value
//! noise, soft mattes); quality metrics ([`metrics`]) are SSIM and PSNR,
//! exactly as in Table IV.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bilinear;
pub mod compositing;
pub mod edge;
pub mod error;
pub mod image;
pub mod matting;
pub mod metrics;
pub mod request;
pub mod scbackend;
pub mod synth;
pub mod tile;

pub use error::ImgError;
pub use image::GrayImage;
pub use request::{Backend, KernelRequest, KernelResponse};
pub use scbackend::{ArrayFaultOverride, CmosScConfig, ScReramConfig};
pub use tile::{PlanCacheRun, ScRunStats, Schedule};
