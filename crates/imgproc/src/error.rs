//! Application-layer error types.

use std::fmt;

/// Errors produced by the image-processing applications.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ImgError {
    /// The accelerator reported an error.
    Accelerator(imsc::ImscError),
    /// A stochastic-computing primitive reported an error.
    Stochastic(sc_core::ScError),
    /// Input images had mismatched dimensions.
    DimensionMismatch {
        /// Expected (width, height).
        expected: (usize, usize),
        /// Actual (width, height).
        got: (usize, usize),
    },
    /// An invalid parameter (zero scale factor, empty image, …).
    InvalidParameter(&'static str),
    /// A configuration combination rejected by
    /// [`ScReramConfig::validate`] — the admission-time check for
    /// option conflicts that the library would otherwise only surface
    /// deep inside a run (or silently paper over).
    ///
    /// [`ScReramConfig::validate`]: crate::scbackend::ScReramConfig::validate
    Config(&'static str),
    /// A PGM file could not be parsed.
    ParsePgm(String),
    /// Replaying the recorded command trace through the memory
    /// simulator failed ([`ScReramConfig::with_trace_replay`]).
    ///
    /// [`ScReramConfig::with_trace_replay`]: crate::scbackend::ScReramConfig::with_trace_replay
    Replay(nvsim::SimError),
}

impl fmt::Display for ImgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImgError::Accelerator(e) => write!(f, "accelerator error: {e}"),
            ImgError::Stochastic(e) => write!(f, "stochastic-computing error: {e}"),
            ImgError::DimensionMismatch { expected, got } => write!(
                f,
                "image dimensions {}x{} do not match expected {}x{}",
                got.0, got.1, expected.0, expected.1
            ),
            ImgError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            ImgError::Config(what) => write!(f, "invalid configuration: {what}"),
            ImgError::ParsePgm(reason) => write!(f, "pgm parse error: {reason}"),
            ImgError::Replay(e) => write!(f, "trace replay error: {e}"),
        }
    }
}

impl std::error::Error for ImgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImgError::Accelerator(e) => Some(e),
            ImgError::Stochastic(e) => Some(e),
            ImgError::Replay(e) => Some(e),
            _ => None,
        }
    }
}

impl From<imsc::ImscError> for ImgError {
    fn from(e: imsc::ImscError) -> Self {
        ImgError::Accelerator(e)
    }
}

impl From<sc_core::ScError> for ImgError {
    fn from(e: sc_core::ScError) -> Self {
        ImgError::Stochastic(e)
    }
}

impl From<nvsim::SimError> for ImgError {
    fn from(e: nvsim::SimError) -> Self {
        ImgError::Replay(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = ImgError::DimensionMismatch {
            expected: (8, 8),
            got: (4, 4),
        };
        assert!(e.to_string().contains("4x4"));
        assert!(e.to_string().contains("8x8"));
    }

    #[test]
    fn conversions() {
        fn f() -> Result<(), ImgError> {
            Err(imsc::ImscError::OutOfRows)?
        }
        assert!(matches!(f(), Err(ImgError::Accelerator(_))));
    }
}
