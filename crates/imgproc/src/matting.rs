//! Image matting: α estimation `α̂ = (I − B) / (F − B)` (Fig. 3c).
//!
//! The in-memory kernel encodes `(I, B, F)` against one shared
//! random-number realization, takes the two XOR absolute differences
//! (still in the shared domain — interval indicators on the same random
//! numbers), and divides with CORDIV in the periphery latches. Because
//! `I = αF + (1−α)B` lies between `B` and `F`, the dividend stream is
//! bitwise contained in the divisor stream — exactly CORDIV's `x ≤ y`
//! correlated-operand requirement.

use crate::error::ImgError;
use crate::image::GrayImage;
use crate::scbackend::{prob_to_pixel, CmosScConfig, ScReramConfig};
use crate::tile::{self, ScRunStats, TileEmitter};
use baselines::bincim::BinaryCim;
use baselines::sw;
use imsc::program::Program;
use imsc::{ProgramSink, RnRefreshPolicy};
use sc_core::{Fixed, ScError};

/// Default realization reuse: consecutive pixels whose `(I, B, F)`
/// encodes share one RN realization (`EveryN(RN_REUSE_PIXELS)`).
///
/// The matting kernel is all-correlated by design — the XOR differences
/// and the CORDIV division *require* the triple to share a realization,
/// and no independent select ever enters — so reuse only adds SCC ≈ +1
/// correlation between streams of *different* pixels, which never meet
/// in an operation. Measured on the 10×10 synthetic matte at N = 256
/// (`tests/refresh_policy.rs`), recomposited PSNR is 40.4 dB under reuse
/// against 41.2 dB under `PerEncode` — a ≤ 0.8 dB cost, within the
/// stochastic noise floor — while RN realizations drop ~8×.
pub const RN_REUSE_PIXELS: u64 = 8;

pub(crate) fn check_inputs(i: &GrayImage, b: &GrayImage, f: &GrayImage) -> Result<(), ImgError> {
    for img in [b, f] {
        if !i.same_dims(img) {
            return Err(ImgError::DimensionMismatch {
                expected: (i.width(), i.height()),
                got: (img.width(), img.height()),
            });
        }
    }
    Ok(())
}

/// Exact software α estimation.
///
/// # Errors
///
/// Returns [`ImgError::DimensionMismatch`] for unequal dimensions.
pub fn software(i: &GrayImage, b: &GrayImage, f: &GrayImage) -> Result<GrayImage, ImgError> {
    check_inputs(i, b, f)?;
    Ok(GrayImage::from_fn(i.width(), i.height(), |x, y| {
        sw::matte_alpha_u8(
            i.get(x, y).expect("checked dims"),
            b.get(x, y).expect("checked dims"),
            f.get(x, y).expect("checked dims"),
        )
    }))
}

/// In-ReRAM SC α estimation: correlated triple encode, XOR differences,
/// periphery CORDIV.
///
/// **Legacy entry point.** New code should build a
/// [`KernelRequest::Matting`](crate::request::KernelRequest) and call
/// [`request::run`](crate::request::run) — this wrapper forwards there
/// and exists for source compatibility.
///
/// # Errors
///
/// Dimension or substrate errors (an all-zero divisor stream, i.e.
/// `F ≈ B`, yields α̂ = 0 rather than an error, matching the software
/// convention for an undefined matte).
pub fn sc_reram(
    i: &GrayImage,
    b: &GrayImage,
    f: &GrayImage,
    cfg: &ScReramConfig,
) -> Result<GrayImage, ImgError> {
    sc_reram_with_stats(i, b, f, cfg).map(|(img, _)| img)
}

/// [`sc_reram`] returning the merged hardware-cost statistics alongside
/// the matte.
///
/// **Legacy entry point** — a thin wrapper over the unified dispatch
/// ([`request::run`](crate::request::run)); results are bit-identical.
///
/// # Errors
///
/// Same as [`sc_reram`].
pub fn sc_reram_with_stats(
    i: &GrayImage,
    b: &GrayImage,
    f: &GrayImage,
    cfg: &ScReramConfig,
) -> Result<(GrayImage, ScRunStats), ImgError> {
    crate::request::run_sc_view(
        crate::request::KernelView::Matting {
            image: i,
            background: b,
            foreground: f,
        },
        cfg,
    )
}

/// Emits the matting kernel for the given rows as a [`Program`]: per
/// pixel, one correlated `(I, B, F)` encode, two XOR differences, and a
/// CORDIV division whose stochastic all-zero-divisor case falls back to
/// α̂ = 0 ([`Program::divide_or`]), matching the software convention for
/// an undefined matte. A degenerate pixel (`F == B`) resolves to a
/// constant 0 at emission time.
///
/// The program declares no refresh groups: the kernel is all-correlated
/// by design (the differences and the division *require* the triple's
/// shared realization, and no independent select ever enters), so
/// realization scheduling is left entirely to the accelerator's policy —
/// `EveryN` reuse across pixels by default (see [`RN_REUSE_PIXELS`]).
///
/// # Panics
///
/// Panics when `b` or `f` dimensions differ from `i`'s, or when `rows`
/// reaches past the image height (the `sc_reram` entry points validate
/// and return errors instead).
#[must_use]
pub fn emit_program(
    i: &GrayImage,
    b: &GrayImage,
    f: &GrayImage,
    rows: std::ops::Range<usize>,
) -> Program {
    assert!(
        i.same_dims(b) && i.same_dims(f),
        "matting emitter needs equal-sized I/B/F images"
    );
    assert!(
        rows.end <= i.height(),
        "rows end {} past image height {}",
        rows.end,
        i.height()
    );
    let mut p = Program::new();
    Emit { i, b, f }.emit(rows, &mut p);
    p
}

/// The kernel as a cache-aware tile emitter (see
/// [`crate::tile::TileEmitter`]). The degenerate-pixel branch changes
/// the emitted op *shape*, so the tape's structure hash — and therefore
/// the template-cache key — distinguishes tiles with different
/// degenerate-pixel patterns automatically.
pub(crate) struct Emit<'a> {
    pub(crate) i: &'a GrayImage,
    pub(crate) b: &'a GrayImage,
    pub(crate) f: &'a GrayImage,
}

impl TileEmitter for Emit<'_> {
    fn kernel(&self) -> &'static str {
        "matting"
    }

    fn default_policy(&self) -> RnRefreshPolicy {
        RnRefreshPolicy::EveryN(RN_REUSE_PIXELS)
    }

    fn emit<S: ProgramSink>(&self, rows: std::ops::Range<usize>, p: &mut S) {
        for y in rows {
            for x in 0..self.i.width() {
                let pi = self.i.get(x, y).expect("checked dims");
                let pb = self.b.get(x, y).expect("checked dims");
                let pf = self.f.get(x, y).expect("checked dims");
                if pf == pb {
                    p.read_const(0.0);
                    continue;
                }
                let ibf = p.encode_correlated(&[
                    Fixed::from_u8(pi),
                    Fixed::from_u8(pb),
                    Fixed::from_u8(pf),
                ]);
                let d_num = p.abs_subtract(ibf[0], ibf[1]);
                let d_den = p.abs_subtract(ibf[2], ibf[1]);
                let alpha = p.divide_or(d_num, d_den, 0.0);
                p.read(alpha);
            }
        }
    }

    fn frame_digest(&self) -> Option<u64> {
        // Emission depends on all three inputs — F and B also decide the
        // degenerate-pixel branch, but that is value-derived, so the
        // image bytes cover it.
        let mut h = tile::digest_image(tile::FRAME_DIGEST_SEED, self.i);
        h = tile::digest_image(h, self.b);
        Some(tile::digest_image(h, self.f))
    }
}

/// Functional CMOS SC α estimation with the same correlated kernel.
///
/// # Errors
///
/// Dimension or stochastic-computing errors.
pub fn sc_cmos(
    i: &GrayImage,
    b: &GrayImage,
    f: &GrayImage,
    cfg: &CmosScConfig,
) -> Result<GrayImage, ImgError> {
    check_inputs(i, b, f)?;
    let mut out = GrayImage::new(i.width(), i.height());
    for y in 0..i.height() {
        for x in 0..i.width() {
            let pi = i.get(x, y).expect("checked dims");
            let pb = b.get(x, y).expect("checked dims");
            let pf = f.get(x, y).expect("checked dims");
            if pf == pb {
                out.set(x, y, 0);
                continue;
            }
            let streams = cfg.streams_correlated(
                &[Fixed::from_u8(pi), Fixed::from_u8(pb), Fixed::from_u8(pf)],
                (y * i.width() + x) as u64,
            )?;
            let d_num = streams[0].xor(&streams[1])?;
            let d_den = streams[2].xor(&streams[1])?;
            let alpha = match sc_core::div::cordiv(&d_num, &d_den) {
                Ok(q) => prob_to_pixel(q.value()),
                Err(ScError::DivisionByZero) => 0,
                Err(e) => return Err(e.into()),
            };
            out.set(x, y, alpha);
        }
    }
    Ok(out)
}

/// Binary CIM α estimation: bit-serial absolute differences and restoring
/// division with optional fault injection — the kernel the paper singles
/// out as catastrophically fault-sensitive.
///
/// # Errors
///
/// Returns [`ImgError::DimensionMismatch`] for unequal dimensions.
pub fn binary_cim(
    i: &GrayImage,
    b: &GrayImage,
    f: &GrayImage,
    fault_prob: f64,
    seed: u64,
) -> Result<GrayImage, ImgError> {
    check_inputs(i, b, f)?;
    let mut cim = if fault_prob > 0.0 {
        BinaryCim::with_faults(fault_prob, seed)
    } else {
        BinaryCim::fault_free()
    };
    let mut out = GrayImage::new(i.width(), i.height());
    for y in 0..i.height() {
        for x in 0..i.width() {
            let pi = i.get(x, y).expect("checked dims");
            let pb = b.get(x, y).expect("checked dims");
            let pf = f.get(x, y).expect("checked dims");
            if pf == pb {
                out.set(x, y, 0);
                continue;
            }
            let d_num = cim.sub_abs(pi, pb);
            let d_den = cim.sub_abs(pf, pb);
            let alpha = cim.div_frac(d_num, d_den.max(1));
            out.set(x, y, alpha);
        }
    }
    Ok(out)
}

/// Recomposites with an estimated matte — the paper's Table IV metric
/// target for matting compares `composite(F, B, α̂)` against
/// `composite(F, B, α)`.
///
/// # Errors
///
/// Propagates compositing errors.
pub fn recomposite(f: &GrayImage, b: &GrayImage, alpha: &GrayImage) -> Result<GrayImage, ImgError> {
    crate::compositing::software(f, b, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compositing;
    use crate::metrics::psnr;
    use crate::synth;

    /// Builds (I, B, F) where I is a true composite, so the exact matte
    /// is recoverable.
    fn inputs(n: usize) -> (GrayImage, GrayImage, GrayImage, GrayImage) {
        let set = synth::app_images(n, n, 77);
        let i = compositing::software(&set.foreground, &set.background, &set.alpha).unwrap();
        (i, set.background, set.foreground, set.alpha)
    }

    #[test]
    fn software_recovers_the_matte() {
        let (i, b, f, alpha) = inputs(16);
        let est = software(&i, &b, &f).unwrap();
        // Recovery is exact up to 8-bit rounding wherever F and B differ
        // appreciably; compare via recomposited images.
        let rec_true = recomposite(&f, &b, &alpha).unwrap();
        let rec_est = recomposite(&f, &b, &est).unwrap();
        let p = psnr(&rec_true, &rec_est).unwrap();
        assert!(p > 30.0, "psnr {p}");
    }

    #[test]
    fn binary_cim_fault_free_tracks_software() {
        let (i, b, f, _) = inputs(16);
        let sw_est = software(&i, &b, &f).unwrap();
        let cim_est = binary_cim(&i, &b, &f, 0.0, 0).unwrap();
        let p = psnr(&sw_est, &cim_est).unwrap();
        assert!(p > 30.0, "psnr {p}");
    }

    #[test]
    fn sc_reram_recovers_an_approximate_matte() {
        let (i, b, f, alpha) = inputs(10);
        let est = sc_reram(&i, &b, &f, &ScReramConfig::new(256, 3)).unwrap();
        let rec_true = recomposite(&f, &b, &alpha).unwrap();
        let rec_est = recomposite(&f, &b, &est).unwrap();
        let p = psnr(&rec_true, &rec_est).unwrap();
        assert!(p > 15.0, "psnr {p}");
    }

    #[test]
    fn sc_cmos_recovers_an_approximate_matte() {
        use crate::scbackend::CmosSngKind;
        let (i, b, f, alpha) = inputs(10);
        let cfg = CmosScConfig::new(256, CmosSngKind::Software, 4);
        let est = sc_cmos(&i, &b, &f, &cfg).unwrap();
        let rec_true = recomposite(&f, &b, &alpha).unwrap();
        let rec_est = recomposite(&f, &b, &est).unwrap();
        let p = psnr(&rec_true, &rec_est).unwrap();
        assert!(p > 15.0, "psnr {p}");
    }

    #[test]
    fn faults_devastate_binary_cim_matting() {
        let (i, b, f, alpha) = inputs(16);
        let rec_true = recomposite(&f, &b, &alpha).unwrap();
        let clean = binary_cim(&i, &b, &f, 0.0, 2).unwrap();
        let faulty = binary_cim(&i, &b, &f, 0.02, 2).unwrap();
        let p_clean = psnr(&rec_true, &recomposite(&f, &b, &clean).unwrap()).unwrap();
        let p_faulty = psnr(&rec_true, &recomposite(&f, &b, &faulty).unwrap()).unwrap();
        assert!(
            p_clean - p_faulty > 5.0,
            "clean {p_clean} vs faulty {p_faulty}"
        );
    }

    #[test]
    fn degenerate_background_yields_zero_alpha() {
        let flat = GrayImage::from_fn(8, 8, |_, _| 100);
        let est = software(&flat, &flat, &flat).unwrap();
        assert!(est.pixels().iter().all(|&p| p == 0));
        let est = binary_cim(&flat, &flat, &flat, 0.0, 0).unwrap();
        assert!(est.pixels().iter().all(|&p| p == 0));
    }
}
