//! Extension application: Roberts-cross edge detection.
//!
//! Not in the paper's Table IV, but the canonical SC image-processing
//! kernel (Li & Lilja's digital-image case studies, which the paper
//! cites as ref.\[5\]) and a natural composition of the paper's operation set:
//!
//! `E(x,y) = ½·(|I(x,y) − I(x+1,y+1)| + |I(x+1,y) − I(x,y+1)|)`
//!
//! Each absolute difference is an XOR over *correlated* streams and the
//! sum is the CIM-friendly MAJ scaled addition — both single scouting
//! cycles, making this the cheapest full-kernel demo of the flow.

use crate::error::ImgError;
use crate::image::GrayImage;
use crate::scbackend::{prob_to_pixel, CmosScConfig, ScReramConfig};
use crate::tile::{self, ScRunStats, TileEmitter};
use baselines::bincim::BinaryCim;
use imsc::program::Program;
use imsc::{ProgramSink, RnRefreshPolicy};
use sc_core::Fixed;

/// Default realization reuse: consecutive pixels whose 4-tap encodes
/// share one RN realization (`EveryN(RN_REUSE_PIXELS)`).
///
/// Reuse is safe here because each output pixel only ever combines
/// streams from its *own* encode batch (the two XOR gradients and the MAJ
/// blend all want the shared realization) with a select that is a fresh
/// TRNG row, independent of every realization by construction. The
/// cross-pixel stream correlation that reuse introduces (SCC ≈ +1
/// between tap streams of nearby pixels) never meets inside an
/// operation, so per-pixel expectations are unchanged; measured on the
/// 10×10 gradient test image at N = 256 (`tests/refresh_policy.rs`),
/// PSNR vs. the exact kernel is 34.9 dB under reuse against 33.1 dB
/// under `PerEncode` — no penalty — while RN realizations drop ~8×.
pub const RN_REUSE_PIXELS: u64 = 8;

/// The 2×2 neighbourhood of the Roberts cross at `(x, y)`.
fn taps(img: &GrayImage, x: usize, y: usize) -> (u8, u8, u8, u8) {
    let g = |dx: usize, dy: usize| img.get_clamped((x + dx) as isize, (y + dy) as isize);
    (g(0, 0), g(1, 1), g(1, 0), g(0, 1))
}

/// Exact software edge magnitude (half-scaled to stay in range).
#[must_use]
pub fn software(img: &GrayImage) -> GrayImage {
    GrayImage::from_fn(img.width(), img.height(), |x, y| {
        let (a, b, c, d) = taps(img, x, y);
        let g1 = i32::from(a.abs_diff(b));
        let g2 = i32::from(c.abs_diff(d));
        ((g1 + g2) / 2).clamp(0, 255) as u8
    })
}

/// In-ReRAM SC edge detection: correlated 4-tap encode, two XOR
/// subtractions (batched), one MAJ scaled addition, ADC read-out.
/// Processes the image in row tiles (one accelerator per tile, optionally
/// thread-parallel) and merges per-tile cost ledgers deterministically.
///
/// **Legacy entry point.** New code should build a
/// [`KernelRequest::Edge`](crate::request::KernelRequest) and call
/// [`request::run`](crate::request::run) — this wrapper forwards there
/// and exists for source compatibility.
///
/// # Errors
///
/// Substrate errors only.
pub fn sc_reram(img: &GrayImage, cfg: &ScReramConfig) -> Result<GrayImage, ImgError> {
    sc_reram_with_stats(img, cfg).map(|(out, _)| out)
}

/// [`sc_reram`] returning the merged hardware-cost statistics alongside
/// the image.
///
/// **Legacy entry point** — a thin wrapper over the unified dispatch
/// ([`request::run`](crate::request::run)); results are bit-identical.
///
/// # Errors
///
/// Substrate errors only.
pub fn sc_reram_with_stats(
    img: &GrayImage,
    cfg: &ScReramConfig,
) -> Result<(GrayImage, ScRunStats), ImgError> {
    crate::request::run_sc_view(crate::request::KernelView::Edge { image: img }, cfg)
}

/// Emits the Roberts-cross kernel for the given rows as a [`Program`]:
/// per pixel, one correlated 4-tap encode, two XOR subtractions, one
/// 0.5-select MAJ blend, one read.
///
/// The program declares no refresh groups: under the kernel's default
/// `EveryN` policy the accelerator schedules realization reuse by batch
/// count (see [`RN_REUSE_PIXELS`]), and every within-pixel operation
/// either *wants* the shared realization (the XOR gradients) or is
/// independent of it by construction (the TRNG select row).
///
/// # Panics
///
/// Panics when `rows` reaches past the image height.
#[must_use]
pub fn emit_program(img: &GrayImage, rows: std::ops::Range<usize>) -> Program {
    assert!(
        rows.end <= img.height(),
        "rows end {} past image height {}",
        rows.end,
        img.height()
    );
    let mut p = Program::new();
    Emit { img }.emit(rows, &mut p);
    p
}

/// The kernel as a cache-aware tile emitter (see
/// [`crate::tile::TileEmitter`]).
pub(crate) struct Emit<'a> {
    pub(crate) img: &'a GrayImage,
}

impl TileEmitter for Emit<'_> {
    fn kernel(&self) -> &'static str {
        "edge"
    }

    fn default_policy(&self) -> RnRefreshPolicy {
        RnRefreshPolicy::EveryN(RN_REUSE_PIXELS)
    }

    fn emit<S: ProgramSink>(&self, rows: std::ops::Range<usize>, p: &mut S) {
        let img = self.img;
        for y in rows {
            for x in 0..img.width() {
                let (a, b, c, d) = taps(img, x, y);
                let taps = p.encode_correlated(&[
                    Fixed::from_u8(a),
                    Fixed::from_u8(b),
                    Fixed::from_u8(c),
                    Fixed::from_u8(d),
                ]);
                let g1 = p.abs_subtract(taps[0], taps[1]);
                let g2 = p.abs_subtract(taps[2], taps[3]);
                // |a−b| and |c−d| are interval indicators over the same
                // random numbers; their overlap makes them *correlated*,
                // so the uncorrelated-input scaled_add is not applicable
                // — use blend with a 0.5 select, which is exact for
                // correlated inputs: 0.5·max + 0.5·min = (g1 + g2)/2.
                // The select is a single-step TRNG row: exactly the ~0.5
                // stream the MAJ wants, independent of the (reused) RN
                // realization.
                let sel = p.trng_select();
                let e = p.blend(g1, g2, sel);
                p.read(e);
            }
        }
    }

    fn frame_digest(&self) -> Option<u64> {
        // Emission depends on the input pixels alone.
        Some(tile::digest_image(tile::FRAME_DIGEST_SEED, self.img))
    }
}

/// Functional CMOS SC edge detection with the same kernel.
///
/// # Errors
///
/// Stochastic-computing errors only.
pub fn sc_cmos(img: &GrayImage, cfg: &CmosScConfig) -> Result<GrayImage, ImgError> {
    let mut out = GrayImage::new(img.width(), img.height());
    for y in 0..img.height() {
        for x in 0..img.width() {
            let (a, b, c, d) = taps(img, x, y);
            let salt = (y * img.width() + x) as u64;
            let streams = cfg.streams_correlated(
                &[
                    Fixed::from_u8(a),
                    Fixed::from_u8(b),
                    Fixed::from_u8(c),
                    Fixed::from_u8(d),
                ],
                salt,
            )?;
            let g1 = streams[0].xor(&streams[1])?;
            let g2 = streams[2].xor(&streams[3])?;
            let sel = cfg.stream(Fixed::new(128, 8)?, 0xED6E ^ salt)?;
            let e = g1.maj3(&g2, &sel)?;
            out.set(x, y, prob_to_pixel(e.value()));
        }
    }
    Ok(out)
}

/// Binary CIM edge detection (bit-serial subtract + add).
///
/// # Errors
///
/// Never fails for a well-formed image (Result kept for API symmetry).
pub fn binary_cim(img: &GrayImage, fault_prob: f64, seed: u64) -> Result<GrayImage, ImgError> {
    let mut cim = if fault_prob > 0.0 {
        BinaryCim::with_faults(fault_prob, seed)
    } else {
        BinaryCim::fault_free()
    };
    let mut out = GrayImage::new(img.width(), img.height());
    for y in 0..img.height() {
        for x in 0..img.width() {
            let (a, b, c, d) = taps(img, x, y);
            let g1 = cim.sub_abs(a, b);
            let g2 = cim.sub_abs(c, d);
            let sum = cim.add_bits(u32::from(g1), u32::from(g2), 9);
            out.set(x, y, (sum / 2).min(255) as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::psnr;
    use crate::synth;

    #[test]
    fn software_finds_checkerboard_edges() {
        let img = synth::checkerboard(16, 16, 4);
        let e = software(&img);
        // Cell interiors are flat (zero gradient), boundaries are strong.
        assert_eq!(e.get(1, 1), Some(0));
        let boundary = e.get(3, 1).unwrap();
        assert!(boundary > 80, "boundary {boundary}");
    }

    #[test]
    fn flat_image_has_no_edges() {
        let img = GrayImage::from_fn(8, 8, |_, _| 123);
        assert!(software(&img).pixels().iter().all(|&p| p == 0));
        let cim = binary_cim(&img, 0.0, 0).unwrap();
        assert!(cim.pixels().iter().all(|&p| p == 0));
    }

    #[test]
    fn binary_cim_matches_software_exactly_when_fault_free() {
        let img = synth::blobs(12, 12, 2, 5);
        let sw_img = software(&img);
        let cim = binary_cim(&img, 0.0, 0).unwrap();
        // Integer kernels: identical up to the /2 rounding convention.
        let p = psnr(&sw_img, &cim).unwrap();
        assert!(p > 48.0, "psnr {p}");
    }

    #[test]
    fn sc_reram_tracks_software() {
        let img = synth::gradient(10, 10, true);
        let sw_img = software(&img);
        let sc = sc_reram(&img, &ScReramConfig::new(256, 4)).unwrap();
        let p = psnr(&sw_img, &sc).unwrap();
        assert!(p > 20.0, "psnr {p}");
    }

    #[test]
    fn sc_cmos_tracks_software() {
        use crate::scbackend::CmosSngKind;
        let img = synth::checkerboard(10, 10, 3);
        let sw_img = software(&img);
        let sc = sc_cmos(&img, &CmosScConfig::new(256, CmosSngKind::Software, 6)).unwrap();
        let p = psnr(&sw_img, &sc).unwrap();
        assert!(p > 15.0, "psnr {p}");
    }
}
