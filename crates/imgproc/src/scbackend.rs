//! Backend configurations for the stochastic-computing image kernels.

use crate::error::ImgError;
use crate::tile::Schedule;
use imsc::engine::Accelerator;
use imsc::imsng::ImsngVariant;
use imsc::program::cache::mix;
use imsc::{Optimize, PlanCache, RetirementPolicy, RnRefreshPolicy};
use reram::faults::FaultRates;
use sc_core::prelude::*;
use std::sync::Arc;

/// A heterogeneous-farm override: one array (fault domain) of a
/// pipelined run gets its own fault rates — the "pathological shard"
/// of fault-domain scheduling. Arrays without an override run the
/// config's base [`ScReramConfig::fault_rates`].
#[derive(Debug, Clone, Copy)]
pub struct ArrayFaultOverride {
    /// The array (fault-domain) index the override applies to.
    pub array: usize,
    /// That array's fault rates.
    pub rates: FaultRates,
}

/// Configuration of the in-ReRAM SC backend.
#[derive(Debug, Clone)]
pub struct ScReramConfig {
    /// Stochastic bit-stream length `N`.
    pub stream_len: usize,
    /// Comparator segment width `M`.
    pub segment_bits: u32,
    /// Master seed.
    pub seed: u64,
    /// CIM fault-injection rates (Table IV ✓ columns).
    pub fault_rates: FaultRates,
    /// Per-cell TRNG bias sigma.
    pub trng_bias_sigma: f64,
    /// IMSNG variant.
    pub variant: ImsngVariant,
    /// RN refresh policy override. `None` (the default) lets each kernel
    /// pick its documented realization-reuse schedule — the kernels only
    /// reuse realizations across *different* pixels, where the resulting
    /// stream correlation is harmless (see [`RnRefreshPolicy`]). Setting
    /// `Some(policy)` forces one policy onto the kernel's accelerators;
    /// `Some(RnRefreshPolicy::PerEncode)` reproduces the
    /// fresh-realization-per-batch behaviour everywhere.
    pub refresh_policy: Option<RnRefreshPolicy>,
    /// How emitted programs are scheduled onto accelerators:
    /// data-parallel per-tile execution (the default) or cross-array
    /// pipelining ([`Schedule::Pipelined`]), which is bit-identical in
    /// pixels/ledgers and additionally measures stage occupancy and
    /// initiation interval ([`crate::tile::ScRunStats::pipeline`]).
    pub schedule: Schedule,
    /// Program-optimizer level applied to emitted programs before
    /// planning (see `imsc::program::opt`). Off by default; the
    /// `IMSC_OPTIMIZE` environment variable (`off`/`cse`/`full`) sets
    /// the initial level in [`ScReramConfig::new`], which an explicit
    /// [`ScReramConfig::with_optimize`] overrides. Ignored — forced off
    /// — when fault injection is enabled (globally or via a per-array
    /// override), because the optimizer's bit-identity argument only
    /// holds on fault-free substrates.
    pub optimize: Optimize,
    /// Allocate accelerator destination rows least-worn-first instead of
    /// LIFO (see `imsc::engine::AcceleratorBuilder::wear_leveling`).
    /// Default off; fault-free pixel output is identical either way,
    /// only the per-row wear distribution changes
    /// ([`crate::tile::ScRunStats::stream_wear`]).
    pub wear_leveling: bool,
    /// Per-array fault-rate override for pipelined fault-domain runs
    /// (requires [`Schedule::Pipelined`]).
    pub array_faults: Option<ArrayFaultOverride>,
    /// Retirement policy for pipelined fault-domain runs: when set, the
    /// scheduler tracks per-array health and retires shards past the
    /// threshold (requires [`Schedule::Pipelined`]).
    pub retirement: Option<RetirementPolicy>,
    /// Record per-array NVMain-style command traces and replay them
    /// through `nvsim` alongside the run, reporting simulated joules and
    /// nanoseconds from the *real* schedule
    /// ([`crate::tile::ScRunStats::replay`]). Off by default; pixels and
    /// the analytic ledger are unchanged either way.
    pub trace_replay: bool,
    /// Compiled-template cache shared across tiles, frames and runs
    /// (see [`imsc::program::cache`]). When set, the kernels tape each
    /// tile's value stream instead of emitting a fresh program, and a
    /// cache hit skips emit, optimize and plan entirely — bit-identical
    /// pixels, ledgers and traces either way
    /// ([`crate::tile::ScRunStats::plan_cache`] reports hit/miss/
    /// fallback counts). `None` by default; the `IMSC_PLAN_CACHE`
    /// environment variable (`1`/`true`/`on`) attaches a fresh
    /// default-capacity cache in [`ScReramConfig::new`], which an
    /// explicit [`ScReramConfig::with_plan_cache`] /
    /// [`ScReramConfig::without_plan_cache`] overrides.
    pub plan_cache: Option<Arc<PlanCache>>,
}

impl ScReramConfig {
    /// Fault-free configuration at stream length `n`.
    #[must_use]
    pub fn new(n: usize, seed: u64) -> Self {
        ScReramConfig {
            stream_len: n,
            segment_bits: 8,
            seed,
            fault_rates: FaultRates::none(),
            trng_bias_sigma: 0.04,
            variant: ImsngVariant::Opt,
            refresh_policy: None,
            schedule: Schedule::PerTile,
            optimize: std::env::var("IMSC_OPTIMIZE")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or_default(),
            wear_leveling: false,
            array_faults: None,
            retirement: None,
            trace_replay: false,
            plan_cache: std::env::var("IMSC_PLAN_CACHE")
                .is_ok_and(|v| matches!(v.as_str(), "1" | "true" | "on"))
                .then(|| Arc::new(PlanCache::new())),
        }
    }

    /// Same configuration with fault injection enabled.
    #[must_use]
    pub fn with_faults(&self, rates: FaultRates) -> Self {
        let mut cfg = self.clone();
        cfg.fault_rates = rates;
        cfg
    }

    /// Same configuration with a forced RN refresh policy (overriding the
    /// per-kernel reuse schedules).
    #[must_use]
    pub fn with_refresh_policy(&self, policy: RnRefreshPolicy) -> Self {
        let mut cfg = self.clone();
        cfg.refresh_policy = Some(policy);
        cfg
    }

    /// Same configuration with the given program [`Schedule`] — e.g.
    /// `Schedule::Pipelined { arrays: 3 }` for cross-array pipelining.
    #[must_use]
    pub fn with_schedule(&self, schedule: Schedule) -> Self {
        let mut cfg = self.clone();
        cfg.schedule = schedule;
        cfg
    }

    /// Same configuration with the given program-optimizer level
    /// (overriding any `IMSC_OPTIMIZE` environment setting).
    #[must_use]
    pub fn with_optimize(&self, optimize: Optimize) -> Self {
        let mut cfg = self.clone();
        cfg.optimize = optimize;
        cfg
    }

    /// Same configuration with wear-leveling row allocation toggled.
    #[must_use]
    pub fn with_wear_leveling(&self, on: bool) -> Self {
        let mut cfg = self.clone();
        cfg.wear_leveling = on;
        cfg
    }

    /// Same configuration with one array's fault rates overridden for
    /// pipelined fault-domain runs.
    #[must_use]
    pub fn with_array_faults(&self, array: usize, rates: FaultRates) -> Self {
        let mut cfg = self.clone();
        cfg.array_faults = Some(ArrayFaultOverride { array, rates });
        cfg
    }

    /// Same configuration with fault-domain retirement enabled under the
    /// given policy.
    #[must_use]
    pub fn with_retirement(&self, policy: RetirementPolicy) -> Self {
        let mut cfg = self.clone();
        cfg.retirement = Some(policy);
        cfg
    }

    /// Same configuration with nvsim trace replay toggled (see
    /// [`ScReramConfig::trace_replay`]).
    #[must_use]
    pub fn with_trace_replay(&self, on: bool) -> Self {
        let mut cfg = self.clone();
        cfg.trace_replay = on;
        cfg
    }

    /// Same configuration sharing the given compiled-template cache (see
    /// [`ScReramConfig::plan_cache`]). Share one [`Arc`] across frames —
    /// and across kernels and schedules; the cache key separates them —
    /// to amortize compilation.
    #[must_use]
    pub fn with_plan_cache(&self, cache: Arc<PlanCache>) -> Self {
        let mut cfg = self.clone();
        cfg.plan_cache = Some(cache);
        cfg
    }

    /// Same configuration with template caching disabled (overriding an
    /// `IMSC_PLAN_CACHE` environment setting).
    #[must_use]
    pub fn without_plan_cache(&self) -> Self {
        let mut cfg = self.clone();
        cfg.plan_cache = None;
        cfg
    }

    /// Validates option *combinations* before any work starts — the
    /// admission-time check a service frontend runs on every request's
    /// configuration. The library entry points deliberately do **not**
    /// call this (they keep their documented behaviour: deep
    /// `InvalidParameter` errors mid-run, or silent downgrades);
    /// `validate` surfaces those conflicts upfront as named
    /// [`ImgError::Config`] errors so a bad request is rejected at
    /// admission instead of failing — or quietly changing meaning —
    /// after it was accepted.
    ///
    /// # Errors
    ///
    /// [`ImgError::Config`] when:
    ///
    /// - `stream_len` is zero (no bitstream to run);
    /// - the schedule is `Pipelined { arrays: 0 }` (would fail inside
    ///   the tile runner);
    /// - a [`retirement`](ScReramConfig::retirement) policy is set
    ///   without `Schedule::Pipelined` (fault domains only exist on the
    ///   pipelined scheduler);
    /// - a per-array [`array_faults`](ScReramConfig::array_faults)
    ///   override is set without `Schedule::Pipelined` (same reason);
    /// - fault injection would silently force a requested optimizer
    ///   level off ([`effective_optimize`]
    ///   ≠ [`optimize`](ScReramConfig::optimize)) — a service must not
    ///   accept a request whose meaning it is about to change.
    ///
    /// [`effective_optimize`]: ScReramConfig::effective_optimize
    pub fn validate(&self) -> Result<(), ImgError> {
        if self.stream_len == 0 {
            return Err(ImgError::Config("stream_len must be non-zero"));
        }
        let pipelined = matches!(self.schedule, Schedule::Pipelined { .. });
        if matches!(self.schedule, Schedule::Pipelined { arrays: 0 }) {
            return Err(ImgError::Config(
                "pipelined schedule needs at least one array",
            ));
        }
        if self.retirement.is_some() && !pipelined {
            return Err(ImgError::Config(
                "retirement policy requires Schedule::Pipelined",
            ));
        }
        if self.array_faults.is_some() && !pipelined {
            return Err(ImgError::Config(
                "per-array fault override requires Schedule::Pipelined",
            ));
        }
        if self.effective_optimize() != self.optimize {
            return Err(ImgError::Config(
                "fault injection forces the optimizer off; request Optimize::Off explicitly or drop the fault rates",
            ));
        }
        Ok(())
    }

    /// The optimizer level the kernels actually run: the configured
    /// level on fault-free substrates, [`Optimize::Off`] under fault
    /// injection — global rates or a per-array override — (faults
    /// perturb streams row-locally, voiding the optimizer's bit-identity
    /// guarantee).
    #[must_use]
    pub fn effective_optimize(&self) -> Optimize {
        let overridden = self.array_faults.is_some_and(|o| !o.rates.is_fault_free());
        if self.fault_rates.is_fault_free() && !overridden {
            self.optimize
        } else {
            Optimize::Off
        }
    }

    /// The optimizer spec a kernel passes to the tile runner: the
    /// effective level plus the refresh policy its accelerators will
    /// run under (mirrors [`ScReramConfig::build_for_tile_with`]'s
    /// policy resolution; the two must stay in lockstep).
    pub(crate) fn opt_spec(&self, kernel_default: RnRefreshPolicy) -> crate::tile::OptSpec {
        crate::tile::OptSpec {
            level: self.effective_optimize(),
            policy: self.refresh_policy.unwrap_or(kernel_default),
        }
    }

    /// The substrate fields of the template-cache key
    /// ([`imsc::TemplateKey::substrate`]): everything about this
    /// configuration that compilation (optimize + plan) could depend on,
    /// plus the fault/wear knobs as defense in depth — a template is
    /// never reused across differing fault or wear configurations, even
    /// though those only perturb execution. Deliberately *excluded* are
    /// the purely execution-side knobs that templates are meant to be
    /// shared across: seed, schedule, retirement, and trace replay.
    pub(crate) fn template_substrate_sig(&self) -> u64 {
        let mut h = mix(0x53_55_42_53, self.stream_len as u64);
        h = mix(h, u64::from(self.segment_bits));
        h = mix(
            h,
            match self.variant {
                ImsngVariant::Baseline => 1,
                ImsngVariant::Naive => 2,
                ImsngVariant::Opt => 3,
            },
        );
        h = mix(h, self.trng_bias_sigma.to_bits());
        for rates in
            std::iter::once(&self.fault_rates).chain(self.array_faults.iter().map(|o| &o.rates))
        {
            for r in [
                rates.and,
                rates.or,
                rates.xor,
                rates.maj,
                rates.not,
                rates.write,
            ] {
                h = mix(h, r.to_bits());
            }
        }
        if let Some(o) = &self.array_faults {
            h = mix(h, o.array as u64);
        }
        mix(h, u64::from(self.wear_leveling))
    }

    /// Builds the accelerator instance for one image run.
    ///
    /// # Errors
    ///
    /// Propagates accelerator construction errors.
    pub fn build(&self) -> Result<Accelerator, ImgError> {
        self.build_for_tile(0)
    }

    /// Builds the accelerator instance driving one row tile of a tiled
    /// kernel run. Tile 0 uses the master seed unchanged; other tiles
    /// derive independent seeds deterministically, so tiled results do
    /// not depend on execution order or thread count.
    ///
    /// # Errors
    ///
    /// Propagates accelerator construction errors.
    pub fn build_for_tile(&self, tile: usize) -> Result<Accelerator, ImgError> {
        self.build_for_tile_with(tile, RnRefreshPolicy::PerEncode)
    }

    /// [`ScReramConfig::build_for_tile`] with the calling kernel's default
    /// refresh policy, which a user-set [`ScReramConfig::refresh_policy`]
    /// overrides.
    ///
    /// # Errors
    ///
    /// Propagates accelerator construction errors.
    pub fn build_for_tile_with(
        &self,
        tile: usize,
        kernel_default: RnRefreshPolicy,
    ) -> Result<Accelerator, ImgError> {
        self.build_with_rates(tile, tile, kernel_default, self.fault_rates)
    }

    /// Builds the accelerator for one slice of a pipelined fault-domain
    /// run: like [`ScReramConfig::build_for_tile_with`], but the array's
    /// fault rates come from [`ScReramConfig::array_faults`] when `array`
    /// matches the override. The seed depends only on the tile, so any
    /// healthy array produces bit-identical streams for a slice — which
    /// is what makes rescheduling a retired shard's slices lossless.
    ///
    /// # Errors
    ///
    /// Propagates accelerator construction errors.
    pub fn build_for_slice(
        &self,
        tile: usize,
        array: usize,
        kernel_default: RnRefreshPolicy,
    ) -> Result<Accelerator, ImgError> {
        let rates = match self.array_faults {
            Some(o) if o.array == array => o.rates,
            _ => self.fault_rates,
        };
        // Domain runs key the trace bank by the *array*: the replayed
        // stream then reflects which fault domain really did the work,
        // reschedules included.
        self.build_with_rates(tile, array, kernel_default, rates)
    }

    /// `bank_key` selects the replay memory bank (modulo the replay
    /// geometry): the tile index for per-tile and plain pipelined runs,
    /// the executing array for fault-domain runs — so stitched traces
    /// replay bank-parallel, mirroring the multi-array layout.
    fn build_with_rates(
        &self,
        tile: usize,
        bank_key: usize,
        kernel_default: RnRefreshPolicy,
        rates: FaultRates,
    ) -> Result<Accelerator, ImgError> {
        Ok(Accelerator::builder()
            .stream_len(self.stream_len)
            .segment_bits(self.segment_bits)
            .seed(crate::tile::tile_seed(self.seed, tile))
            .fault_rates(rates)
            .trng_bias_sigma(self.trng_bias_sigma)
            .variant(self.variant)
            .refresh_policy(self.refresh_policy.unwrap_or(kernel_default))
            .stream_rows(24)
            .wear_leveling(self.wear_leveling)
            .record_trace(self.trace_replay)
            .trace_bank(bank_key % imsc::instrument::REPLAY_BANKS)
            .build()?)
    }
}

/// The RNG family of the functional CMOS SC backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmosSngKind {
    /// 8-bit maximal-length LFSR.
    Lfsr,
    /// 8-bit Sobol sequence (dimension-per-domain).
    Sobol,
    /// Full-width software uniform source.
    Software,
}

/// Configuration of the functional CMOS SC backend (accuracy mirror of
/// the Table III ✛ designs; assumed fault-free, as CMOS logic is).
#[derive(Debug, Clone, Copy)]
pub struct CmosScConfig {
    /// Stochastic bit-stream length `N`.
    pub stream_len: usize,
    /// RNG family.
    pub sng: CmosSngKind,
    /// Master seed.
    pub seed: u64,
}

impl CmosScConfig {
    /// Creates a configuration.
    #[must_use]
    pub fn new(n: usize, sng: CmosSngKind, seed: u64) -> Self {
        CmosScConfig {
            stream_len: n,
            sng,
            seed,
        }
    }

    fn source(&self, salt: u64) -> Result<Box<dyn RandomSource>, ImgError> {
        let mixed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(salt);
        Ok(match self.sng {
            CmosSngKind::Lfsr => {
                // Nonzero seed derived deterministically from the salt.
                let s = (mixed % 255) + 1;
                Box::new(Lfsr::maximal(8, s)?)
            }
            CmosSngKind::Sobol => {
                let dim = (salt as usize) % Sobol::max_dimensions();
                Box::new(Sobol::new(dim, 8)?)
            }
            CmosSngKind::Software => Box::new(UniformSource::seed_from_u64(mixed)),
        })
    }

    /// Generates one stream in its own randomness domain (`salt`
    /// distinguishes independent domains).
    ///
    /// # Errors
    ///
    /// Propagates RNG construction failures.
    pub fn stream(&self, x: Fixed, salt: u64) -> Result<BitStream, ImgError> {
        let mut sng = Sng::new(self.source(salt)?);
        Ok(sng.generate_fixed(x, self.stream_len))
    }

    /// Generates maximally correlated streams for several operands by
    /// sharing one random-number sequence.
    ///
    /// # Errors
    ///
    /// Propagates RNG construction failures.
    pub fn streams_correlated(
        &self,
        operands: &[Fixed],
        salt: u64,
    ) -> Result<Vec<BitStream>, ImgError> {
        let mut source = self.source(salt)?;
        let mut streams = vec![BitStream::zeros(self.stream_len); operands.len()];
        let m = source.bits();
        for i in 0..self.stream_len {
            let rn = source.next_value();
            for (s, &op) in streams.iter_mut().zip(operands) {
                // 1 iff rn/2^m < op (same exact comparison as the SNG).
                if (u128::from(rn) << op.bits()) < (u128::from(op.value()) << m) {
                    s.set(i, true);
                }
            }
        }
        Ok(streams)
    }
}

/// Quantizes a probability estimate to an 8-bit pixel.
#[must_use]
pub fn prob_to_pixel(p: f64) -> u8 {
    (p * 255.0).round().clamp(0.0, 255.0) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_core::correlation::scc;

    #[test]
    fn reram_config_builds() {
        let cfg = ScReramConfig::new(64, 1);
        let acc = cfg.build().unwrap();
        assert_eq!(acc.stream_len(), 64);
    }

    #[test]
    fn cmos_streams_track_targets() {
        for kind in [CmosSngKind::Lfsr, CmosSngKind::Sobol, CmosSngKind::Software] {
            let cfg = CmosScConfig::new(256, kind, 5);
            let s = cfg.stream(Fixed::from_u8(128), 1).unwrap();
            assert!((s.value() - 0.5).abs() < 0.1, "{kind:?}: {}", s.value());
        }
    }

    #[test]
    fn correlated_streams_are_nested() {
        let cfg = CmosScConfig::new(1024, CmosSngKind::Software, 7);
        let streams = cfg
            .streams_correlated(&[Fixed::from_u8(60), Fixed::from_u8(200)], 3)
            .unwrap();
        assert!(scc(&streams[0], &streams[1]).unwrap() > 0.99);
    }

    #[test]
    fn different_salts_are_independent() {
        let cfg = CmosScConfig::new(4096, CmosSngKind::Software, 9);
        let a = cfg.stream(Fixed::from_u8(128), 1).unwrap();
        let b = cfg.stream(Fixed::from_u8(128), 2).unwrap();
        assert!(scc(&a, &b).unwrap().abs() < 0.06);
    }

    #[test]
    fn pixel_quantization() {
        assert_eq!(prob_to_pixel(0.0), 0);
        assert_eq!(prob_to_pixel(1.0), 255);
        assert_eq!(prob_to_pixel(0.5), 128);
        assert_eq!(prob_to_pixel(2.0), 255);
    }
}
