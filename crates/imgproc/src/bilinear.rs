//! Bilinear interpolation up-scaling (Fig. 3b).
//!
//! Each output pixel blends its four source neighbours with fractional
//! offsets `(dx, dy)` — a 4-to-1 MUX in the SC domain. The in-memory
//! kernel decomposes it into three directed MAJ blends over one shared
//! correlation domain: two horizontal blends (select `dx`) and one
//! vertical blend of their results (select `dy`); blend outputs remain in
//! the operands' correlation domain, which is what makes the nesting
//! legal.

use crate::error::ImgError;
use crate::image::GrayImage;
use crate::scbackend::{prob_to_pixel, CmosScConfig, ScReramConfig};
use crate::tile::{self, ScRunStats, TileEmitter};
use baselines::bincim::BinaryCim;
use baselines::sw;
use imsc::program::Program;
use imsc::{ProgramSink, RnRefreshPolicy};
use sc_core::Fixed;

/// The four neighbours and fractional offsets of one output pixel.
#[derive(Debug, Clone, Copy)]
struct Tap {
    i11: u8, // (x0, y0)
    i21: u8, // (x1, y0)
    i12: u8, // (x0, y1)
    i22: u8, // (x1, y1)
    dx: u8,
    dy: u8,
}

fn tap(src: &GrayImage, ox: usize, oy: usize, factor: usize) -> Tap {
    let fx = ox as f64 / factor as f64;
    let fy = oy as f64 / factor as f64;
    let x0 = fx.floor() as isize;
    let y0 = fy.floor() as isize;
    let dx = ((fx - x0 as f64) * 256.0).round().clamp(0.0, 255.0) as u8;
    let dy = ((fy - y0 as f64) * 256.0).round().clamp(0.0, 255.0) as u8;
    Tap {
        i11: src.get_clamped(x0, y0),
        i21: src.get_clamped(x0 + 1, y0),
        i12: src.get_clamped(x0, y0 + 1),
        i22: src.get_clamped(x0 + 1, y0 + 1),
        dx,
        dy,
    }
}

pub(crate) fn check_factor(factor: usize) -> Result<(), ImgError> {
    if factor < 2 {
        Err(ImgError::InvalidParameter(
            "scale factor must be at least 2",
        ))
    } else {
        Ok(())
    }
}

/// Exact software up-scaling by an integer factor.
///
/// # Errors
///
/// Returns [`ImgError::InvalidParameter`] if `factor < 2`.
pub fn software(src: &GrayImage, factor: usize) -> Result<GrayImage, ImgError> {
    check_factor(factor)?;
    Ok(GrayImage::from_fn(
        src.width() * factor,
        src.height() * factor,
        |ox, oy| {
            let t = tap(src, ox, oy, factor);
            sw::bilinear_u8(t.i11, t.i12, t.i21, t.i22, t.dx, t.dy)
        },
    ))
}

/// Emits one output pixel into the program: correlated 4-tap encode, the
/// two horizontal directed blends, one vertical blend, one read. The two
/// select encodes each start a new refresh group — see [`emit_program`].
fn emit_pixel<S: ProgramSink>(p: &mut S, src: &GrayImage, ox: usize, oy: usize, factor: usize) {
    let t = tap(src, ox, oy, factor);
    let taps = p.encode_correlated(&[
        Fixed::from_u8(t.i11),
        Fixed::from_u8(t.i21),
        Fixed::from_u8(t.i12),
        Fixed::from_u8(t.i22),
    ]);
    // Directed selects: MAJ weights the larger operand by `sel`,
    // so complement dx/dy when the pair is descending.
    let sel_top = if t.i21 >= t.i11 { t.dx } else { 255 - t.dx };
    let sel_bot = if t.i22 >= t.i12 { t.dx } else { 255 - t.dx };
    // The selects must be independent of the operand realization, so
    // they start a new refresh group — the declarative form of a
    // within-pixel refresh point. The two horizontal selects share one
    // realization: they stay independent of the operand domain, and
    // their mutual correlation only strengthens the top/bottom
    // correlation the outer blend requires.
    p.next_group();
    let sels = p.encode_correlated(&[Fixed::from_u8(sel_top), Fixed::from_u8(sel_bot)]);
    let top = p.blend(taps[0], taps[1], sels[0]);
    let bottom = p.blend(taps[2], taps[3], sels[1]);
    // Expected row values decide the vertical direction.
    let et = sw::bilinear_f64(
        f64::from(t.i11),
        0.0,
        f64::from(t.i21),
        0.0,
        f64::from(t.dx) / 256.0,
        0.0,
    );
    let eb = sw::bilinear_f64(
        f64::from(t.i12),
        0.0,
        f64::from(t.i22),
        0.0,
        f64::from(t.dx) / 256.0,
        0.0,
    );
    let sel_v = if eb >= et { t.dy } else { 255 - t.dy };
    // The vertical select must be independent of both the operand
    // realization (top/bottom live in the operand domain) and the
    // horizontal-select realization (top/bottom also depend on those
    // bits), so it gets its own refresh group too.
    p.next_group();
    let hsv = p.encode(Fixed::from_u8(sel_v));
    let result = p.blend(top, bottom, hsv);
    p.read(result);
}

/// Emits the bilinear up-scaling kernel for the given output rows as a
/// [`Program`] of nested directed MAJ blends.
///
/// The refresh-group schedule declares two independence points per
/// pixel, before the horizontal-select batch and before the vertical
/// select — the two places where within-pixel independence is required.
/// The 4-tap operand batch of the *next* pixel stays in the previous
/// vertical select's group and reuses its realization, which is harmless
/// (those streams never meet in one operation). Under the kernel's
/// default `Explicit` policy this cuts RN refreshes from 3 to 2 per
/// pixel versus `PerEncode`; measured on the 6×6 gradient at N = 256
/// (`tests/refresh_policy.rs`), PSNR vs. the exact upscale is 33.1 dB
/// under reuse against 32.9 dB fresh — no penalty.
///
/// # Panics
///
/// Panics when `factor < 2` or `rows` reaches past the output height
/// (the `sc_reram` entry points validate and return errors instead).
#[must_use]
pub fn emit_program(src: &GrayImage, factor: usize, rows: std::ops::Range<usize>) -> Program {
    assert!(factor >= 2, "scale factor must be at least 2");
    assert!(
        rows.end <= src.height() * factor,
        "rows end {} past output height {}",
        rows.end,
        src.height() * factor
    );
    let mut p = Program::new();
    Emit { src, factor }.emit(rows, &mut p);
    p
}

/// The kernel as a cache-aware tile emitter (see
/// [`crate::tile::TileEmitter`]).
pub(crate) struct Emit<'a> {
    pub(crate) src: &'a GrayImage,
    pub(crate) factor: usize,
}

impl tile::TileEmitter for Emit<'_> {
    fn kernel(&self) -> &'static str {
        "bilinear"
    }

    fn default_policy(&self) -> RnRefreshPolicy {
        RnRefreshPolicy::Explicit
    }

    fn emit<S: ProgramSink>(&self, rows: std::ops::Range<usize>, p: &mut S) {
        let width = self.src.width() * self.factor;
        for oy in rows {
            for ox in 0..width {
                emit_pixel(p, self.src, ox, oy, self.factor);
            }
        }
    }

    fn frame_digest(&self) -> Option<u64> {
        // Emission depends on the source pixels and the scale factor.
        Some(tile::digest_image(
            imsc::program::cache::mix(tile::FRAME_DIGEST_SEED, self.factor as u64),
            self.src,
        ))
    }
}

/// In-ReRAM SC up-scaling: nested directed MAJ blends over one shared
/// correlation domain. Processes the output in row tiles — one
/// accelerator instance per tile, optionally thread-parallel (`parallel`
/// feature) — and merges per-tile cost ledgers deterministically.
///
/// **Legacy entry point.** New code should build a
/// [`KernelRequest::Bilinear`](crate::request::KernelRequest) and call
/// [`request::run`](crate::request::run) — this wrapper forwards there
/// and exists for source compatibility.
///
/// # Errors
///
/// Parameter or substrate errors.
pub fn sc_reram(
    src: &GrayImage,
    factor: usize,
    cfg: &ScReramConfig,
) -> Result<GrayImage, ImgError> {
    sc_reram_with_stats(src, factor, cfg).map(|(img, _)| img)
}

/// [`sc_reram`] returning the merged hardware-cost statistics alongside
/// the image.
///
/// **Legacy entry point** — a thin wrapper over the unified dispatch
/// ([`request::run`](crate::request::run)); results are bit-identical.
///
/// # Errors
///
/// Parameter or substrate errors.
pub fn sc_reram_with_stats(
    src: &GrayImage,
    factor: usize,
    cfg: &ScReramConfig,
) -> Result<(GrayImage, ScRunStats), ImgError> {
    crate::request::run_sc_view(crate::request::KernelView::Bilinear { src, factor }, cfg)
}

/// Functional CMOS SC up-scaling with the same nested-MAJ kernel.
///
/// # Errors
///
/// Parameter or stochastic-computing errors.
pub fn sc_cmos(src: &GrayImage, factor: usize, cfg: &CmosScConfig) -> Result<GrayImage, ImgError> {
    check_factor(factor)?;
    let mut out = GrayImage::new(src.width() * factor, src.height() * factor);
    for oy in 0..out.height() {
        for ox in 0..out.width() {
            let t = tap(src, ox, oy, factor);
            let salt = (oy * out.width() + ox) as u64;
            let vals = cfg.streams_correlated(
                &[
                    Fixed::from_u8(t.i11),
                    Fixed::from_u8(t.i21),
                    Fixed::from_u8(t.i12),
                    Fixed::from_u8(t.i22),
                ],
                salt,
            )?;
            let sel_top = if t.i21 >= t.i11 { t.dx } else { 255 - t.dx };
            let sel_bot = if t.i22 >= t.i12 { t.dx } else { 255 - t.dx };
            let st = cfg.stream(Fixed::from_u8(sel_top), 0xD0 ^ salt)?;
            let sb = cfg.stream(Fixed::from_u8(sel_bot), 0xD1 ^ salt)?;
            let top = vals[0].maj3(&vals[1], &st)?;
            let bottom = vals[2].maj3(&vals[3], &sb)?;
            let et =
                f64::from(t.i11) + (f64::from(t.i21) - f64::from(t.i11)) * f64::from(t.dx) / 256.0;
            let eb =
                f64::from(t.i12) + (f64::from(t.i22) - f64::from(t.i12)) * f64::from(t.dx) / 256.0;
            let sel_v = if eb >= et { t.dy } else { 255 - t.dy };
            let sv = cfg.stream(Fixed::from_u8(sel_v), 0xD2 ^ salt)?;
            let result = top.maj3(&bottom, &sv)?;
            out.set(ox, oy, prob_to_pixel(result.value()));
        }
    }
    Ok(out)
}

/// Binary CIM up-scaling: weight products and accumulation in bit-serial
/// arithmetic with optional fault injection.
///
/// # Errors
///
/// Returns [`ImgError::InvalidParameter`] if `factor < 2`.
pub fn binary_cim(
    src: &GrayImage,
    factor: usize,
    fault_prob: f64,
    seed: u64,
) -> Result<GrayImage, ImgError> {
    check_factor(factor)?;
    let mut cim = if fault_prob > 0.0 {
        BinaryCim::with_faults(fault_prob, seed)
    } else {
        BinaryCim::fault_free()
    };
    let mut out = GrayImage::new(src.width() * factor, src.height() * factor);
    for oy in 0..out.height() {
        for ox in 0..out.width() {
            let t = tap(src, ox, oy, factor);
            let wx1 = 255 - t.dx;
            let wy1 = 255 - t.dy;
            // w_ij = wx_i · wy_j (8-bit fractions); out = Σ w_ij · I_ij.
            let mut acc: u32 = 0;
            for (wx, wy, i) in [
                (wx1, wy1, t.i11),
                (t.dx, wy1, t.i21),
                (wx1, t.dy, t.i12),
                (t.dx, t.dy, t.i22),
            ] {
                let w = cim.mul(wx, wy); // (wx·wy)/256
                let term = cim.mul_wide(w, i);
                acc = cim.add_bits(acc, u32::from(term), 18);
            }
            let pixel = ((f64::from(acc) / 255.0).round()).clamp(0.0, 255.0) as u8;
            out.set(ox, oy, pixel);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::psnr;
    use crate::synth;

    #[test]
    fn software_preserves_anchor_pixels() {
        let src = synth::value_noise(8, 8, 2, 1);
        let up = software(&src, 2).unwrap();
        for y in 0..8 {
            for x in 0..8 {
                assert_eq!(up.get(2 * x, 2 * y), src.get(x, y), "anchor ({x},{y})");
            }
        }
        assert_eq!(up.width(), 16);
    }

    #[test]
    fn software_interpolates_midpoints() {
        let src = GrayImage::from_fn(4, 1, |x, _| (x * 60) as u8);
        let up = software(&src, 2).unwrap();
        // Midpoint between 0 and 60 is 30.
        let mid = up.get(1, 0).unwrap();
        assert!((i32::from(mid) - 30).abs() <= 1, "{mid}");
    }

    #[test]
    fn factor_validation() {
        let src = GrayImage::new(4, 4);
        assert!(software(&src, 1).is_err());
        assert!(binary_cim(&src, 0, 0.0, 0).is_err());
    }

    #[test]
    fn binary_cim_fault_free_tracks_software() {
        let src = synth::blobs(8, 8, 2, 3);
        let sw_img = software(&src, 2).unwrap();
        let cim_img = binary_cim(&src, 2, 0.0, 0).unwrap();
        let p = psnr(&sw_img, &cim_img).unwrap();
        assert!(p > 35.0, "psnr {p}");
    }

    #[test]
    fn sc_reram_tracks_software() {
        let src = synth::gradient(6, 6, true);
        let sw_img = software(&src, 2).unwrap();
        let sc_img = sc_reram(&src, 2, &ScReramConfig::new(256, 5)).unwrap();
        let p = psnr(&sw_img, &sc_img).unwrap();
        assert!(p > 17.0, "psnr {p}");
    }

    #[test]
    fn sc_cmos_tracks_software() {
        use crate::scbackend::CmosSngKind;
        let src = synth::gradient(6, 6, false);
        let sw_img = software(&src, 2).unwrap();
        let cfg = CmosScConfig::new(256, CmosSngKind::Software, 6);
        let sc_img = sc_cmos(&src, 2, &cfg).unwrap();
        let p = psnr(&sw_img, &sc_img).unwrap();
        assert!(p > 17.0, "psnr {p}");
    }
}
