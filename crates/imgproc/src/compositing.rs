//! Image compositing `C = F·α + B·(1−α)` (Fig. 3a).
//!
//! In the SC domain the compositing formula is a 2-to-1 MUX with the α
//! stream on the select port. The in-memory design realizes the MUX as a
//! 3-input majority over *correlated* F/B streams — MAJ then computes
//! `sel·max + (1−sel)·min`, so the select operand is complemented
//! per-pixel whenever `F < B` (the ordering is known from the binary
//! pixels at encode time), making the blend exact up to stochastic noise.

use crate::error::ImgError;
use crate::image::GrayImage;
use crate::scbackend::{prob_to_pixel, CmosScConfig, ScReramConfig};
use crate::tile::{self, ScRunStats, TileEmitter};
use baselines::bincim::BinaryCim;
use baselines::sw;
use imsc::program::Program;
use imsc::{ProgramSink, RnRefreshPolicy};
use sc_core::Fixed;

pub(crate) fn check_inputs(
    f: &GrayImage,
    b: &GrayImage,
    alpha: &GrayImage,
) -> Result<(), ImgError> {
    for img in [b, alpha] {
        if !f.same_dims(img) {
            return Err(ImgError::DimensionMismatch {
                expected: (f.width(), f.height()),
                got: (img.width(), img.height()),
            });
        }
    }
    Ok(())
}

/// Exact software compositing (8-bit rounded).
///
/// # Errors
///
/// Returns [`ImgError::DimensionMismatch`] for unequal dimensions.
pub fn software(f: &GrayImage, b: &GrayImage, alpha: &GrayImage) -> Result<GrayImage, ImgError> {
    check_inputs(f, b, alpha)?;
    Ok(GrayImage::from_fn(f.width(), f.height(), |x, y| {
        sw::composite_u8(
            f.get(x, y).expect("checked dims"),
            b.get(x, y).expect("checked dims"),
            alpha.get(x, y).expect("checked dims"),
        )
    }))
}

/// In-ReRAM SC compositing: correlated F/B encoding, directed MAJ blend,
/// ADC read-out — the full ❶❷❸ flow per pixel. Processes the image in
/// row tiles (one accelerator per tile, optionally thread-parallel) and
/// merges per-tile cost ledgers deterministically.
///
/// **Legacy entry point.** New code should build a
/// [`KernelRequest::Compositing`](crate::request::KernelRequest) and
/// call [`request::run`](crate::request::run) — this wrapper forwards
/// there and exists for source compatibility.
///
/// # Errors
///
/// Dimension or substrate errors.
pub fn sc_reram(
    f: &GrayImage,
    b: &GrayImage,
    alpha: &GrayImage,
    cfg: &ScReramConfig,
) -> Result<GrayImage, ImgError> {
    sc_reram_with_stats(f, b, alpha, cfg).map(|(img, _)| img)
}

/// [`sc_reram`] returning the merged hardware-cost statistics alongside
/// the image.
///
/// **Legacy entry point** — a thin wrapper over the unified dispatch
/// ([`request::run`](crate::request::run)); results are bit-identical.
///
/// # Errors
///
/// Dimension or substrate errors.
pub fn sc_reram_with_stats(
    f: &GrayImage,
    b: &GrayImage,
    alpha: &GrayImage,
    cfg: &ScReramConfig,
) -> Result<(GrayImage, ScRunStats), ImgError> {
    crate::request::run_sc_view(
        crate::request::KernelView::Compositing {
            foreground: f,
            background: b,
            alpha,
        },
        cfg,
    )
}

/// Emits the compositing kernel for the given output rows as a
/// [`Program`]: per pixel, one correlated F/B encode, the directed
/// α-select encode in a fresh refresh group, one MAJ blend, one read.
///
/// The refresh-group schedule declares one independence point per pixel,
/// between the F/B encode and the α-select encode. Within a pixel the
/// select must be independent of the operands (a shared realization
/// would bias the MAJ), so the select starts a new group; the F/B pair
/// of the *next* pixel then stays in the select's group and reuses its
/// realization, which is harmless — those streams never meet in one
/// operation. Under the kernel's default `Explicit` policy this halves
/// RN refreshes versus `PerEncode`; measured on the 12×12 synthetic
/// inputs at N = 256 (`tests/refresh_policy.rs`), PSNR vs. the exact
/// composite is 31.9 dB under reuse against 31.4 dB fresh — no penalty.
///
/// # Panics
///
/// Panics when `b` or `alpha` dimensions differ from `f`'s, or when
/// `rows` reaches past the image height (the `sc_reram` entry points
/// validate and return errors instead).
#[must_use]
pub fn emit_program(
    f: &GrayImage,
    b: &GrayImage,
    alpha: &GrayImage,
    rows: std::ops::Range<usize>,
) -> Program {
    assert!(
        f.same_dims(b) && f.same_dims(alpha),
        "compositing emitter needs equal-sized F/B/α images"
    );
    assert!(
        rows.end <= f.height(),
        "rows end {} past image height {}",
        rows.end,
        f.height()
    );
    let mut p = Program::new();
    Emit { f, b, alpha }.emit(rows, &mut p);
    p
}

/// The kernel as a cache-aware tile emitter (see
/// [`crate::tile::TileEmitter`]).
pub(crate) struct Emit<'a> {
    pub(crate) f: &'a GrayImage,
    pub(crate) b: &'a GrayImage,
    pub(crate) alpha: &'a GrayImage,
}

impl TileEmitter for Emit<'_> {
    fn kernel(&self) -> &'static str {
        "compositing"
    }

    fn default_policy(&self) -> RnRefreshPolicy {
        RnRefreshPolicy::Explicit
    }

    fn emit<S: ProgramSink>(&self, rows: std::ops::Range<usize>, p: &mut S) {
        for y in rows {
            for x in 0..self.f.width() {
                let pf = self.f.get(x, y).expect("checked dims");
                let pb = self.b.get(x, y).expect("checked dims");
                let pa = self.alpha.get(x, y).expect("checked dims");
                // Directed select: MAJ weights the larger operand by
                // `sel`.
                let sel = if pf >= pb { pa } else { 255 - pa };
                let fb = p.encode_correlated(&[Fixed::from_u8(pf), Fixed::from_u8(pb)]);
                p.next_group();
                let hs = p.encode(Fixed::from_u8(sel));
                let hc = p.blend(fb[0], fb[1], hs);
                p.read(hc);
            }
        }
    }

    fn frame_digest(&self) -> Option<u64> {
        // Emission depends on all three input images (α drives the
        // per-pixel select direction, too).
        let mut h = tile::digest_image(tile::FRAME_DIGEST_SEED, self.f);
        h = tile::digest_image(h, self.b);
        Some(tile::digest_image(h, self.alpha))
    }
}

/// Functional CMOS SC compositing (LFSR/Sobol/software SNG), with the
/// same directed-MAJ kernel.
///
/// # Errors
///
/// Dimension or stochastic-computing errors.
pub fn sc_cmos(
    f: &GrayImage,
    b: &GrayImage,
    alpha: &GrayImage,
    cfg: &CmosScConfig,
) -> Result<GrayImage, ImgError> {
    check_inputs(f, b, alpha)?;
    let mut out = GrayImage::new(f.width(), f.height());
    for y in 0..f.height() {
        for x in 0..f.width() {
            let pf = f.get(x, y).expect("checked dims");
            let pb = b.get(x, y).expect("checked dims");
            let pa = alpha.get(x, y).expect("checked dims");
            let sel = if pf >= pb { pa } else { 255 - pa };
            let fb = cfg.streams_correlated(
                &[Fixed::from_u8(pf), Fixed::from_u8(pb)],
                (y * f.width() + x) as u64,
            )?;
            let ss = cfg.stream(Fixed::from_u8(sel), 0x5E1F ^ (y * f.width() + x) as u64)?;
            let c = fb[0].maj3(&fb[1], &ss)?;
            out.set(x, y, prob_to_pixel(c.value()));
        }
    }
    Ok(out)
}

/// Binary CIM compositing: bit-serial multiplies and adds with optional
/// fault injection (the Table IV ✧ path).
///
/// # Errors
///
/// Returns [`ImgError::DimensionMismatch`] for unequal dimensions.
pub fn binary_cim(
    f: &GrayImage,
    b: &GrayImage,
    alpha: &GrayImage,
    fault_prob: f64,
    seed: u64,
) -> Result<GrayImage, ImgError> {
    check_inputs(f, b, alpha)?;
    let mut cim = if fault_prob > 0.0 {
        BinaryCim::with_faults(fault_prob, seed)
    } else {
        BinaryCim::fault_free()
    };
    let mut out = GrayImage::new(f.width(), f.height());
    for y in 0..f.height() {
        for x in 0..f.width() {
            let pf = f.get(x, y).expect("checked dims");
            let pb = b.get(x, y).expect("checked dims");
            let pa = alpha.get(x, y).expect("checked dims");
            let fa = cim.mul_wide(pf, pa);
            let ba = cim.mul_wide(pb, 255 - pa);
            // 17-bit accumulate, then exact normalization by 255 (the
            // normalizer is a constant shifter network, modeled exact).
            let sum = cim.add_bits(u32::from(fa), u32::from(ba), 17);
            let pixel = ((f64::from(sum) / 255.0).round()).clamp(0.0, 255.0) as u8;
            out.set(x, y, pixel);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{psnr, ssim_percent};
    use crate::synth;

    fn inputs(n: usize) -> (GrayImage, GrayImage, GrayImage) {
        let set = synth::app_images(n, n, 42);
        (set.foreground, set.background, set.alpha)
    }

    #[test]
    fn software_matches_alpha_semantics() {
        let (f, b, a) = inputs(16);
        let c = software(&f, &b, &a).unwrap();
        // Where alpha is saturated the composite equals the corresponding
        // source image.
        for y in 0..16 {
            for x in 0..16 {
                match a.get(x, y).unwrap() {
                    255 => assert_eq!(c.get(x, y), f.get(x, y)),
                    0 => assert_eq!(c.get(x, y), b.get(x, y)),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn binary_cim_fault_free_is_near_exact() {
        let (f, b, a) = inputs(16);
        let sw_img = software(&f, &b, &a).unwrap();
        let cim_img = binary_cim(&f, &b, &a, 0.0, 0).unwrap();
        let p = psnr(&sw_img, &cim_img).unwrap();
        assert!(p > 45.0, "psnr {p}");
    }

    #[test]
    fn sc_reram_tracks_software() {
        let (f, b, a) = inputs(12);
        let sw_img = software(&f, &b, &a).unwrap();
        let sc_img = sc_reram(&f, &b, &a, &ScReramConfig::new(256, 7)).unwrap();
        let p = psnr(&sw_img, &sc_img).unwrap();
        assert!(p > 18.0, "psnr {p}");
    }

    #[test]
    fn sc_cmos_tracks_software() {
        use crate::scbackend::CmosSngKind;
        let (f, b, a) = inputs(12);
        let sw_img = software(&f, &b, &a).unwrap();
        let cfg = CmosScConfig::new(256, CmosSngKind::Sobol, 3);
        let sc_img = sc_cmos(&f, &b, &a, &cfg).unwrap();
        let p = psnr(&sw_img, &sc_img).unwrap();
        assert!(p > 18.0, "psnr {p}");
    }

    #[test]
    fn faulty_binary_cim_degrades_hard() {
        let (f, b, a) = inputs(16);
        let sw_img = software(&f, &b, &a).unwrap();
        let clean = binary_cim(&f, &b, &a, 0.0, 1).unwrap();
        let faulty = binary_cim(&f, &b, &a, 0.02, 1).unwrap();
        let s_clean = ssim_percent(&sw_img, &clean).unwrap();
        let s_faulty = ssim_percent(&sw_img, &faulty).unwrap();
        assert!(
            s_clean - s_faulty > 5.0,
            "clean {s_clean} vs faulty {s_faulty}"
        );
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let f = GrayImage::new(8, 8);
        let b = GrayImage::new(8, 9);
        let a = GrayImage::new(8, 8);
        assert!(software(&f, &b, &a).is_err());
    }
}
