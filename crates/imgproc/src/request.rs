//! The unified kernel-request API — one request shape, one dispatch.
//!
//! Historically every kernel exposed its own `software` / `sc_reram` /
//! `sc_reram_with_stats` / `sc_cmos` / `binary_cim` free-function
//! family, so a server, bench, or test had to hand-dispatch per kernel.
//! This module is the request-shaped seam those callers use instead:
//!
//! * [`KernelRequest`] — which kernel, with its input images and
//!   parameters (owned, so a request can cross threads and sockets);
//! * [`Backend`] — which of the four evaluation backends executes it;
//! * [`run`] / [`run_on`] — the single dispatch, returning a
//!   [`KernelResponse`] carrying pixels and (for the SC-ReRAM backend)
//!   the merged [`ScRunStats`];
//! * [`run_batch`] — many requests as **one** scheduling pass over the
//!   array pool, the service frontend's coalescing primitive: compiled
//!   templates are shared across requests via the attached
//!   [`ScReramConfig::plan_cache`], and under [`Schedule::Pipelined`]
//!   every request's slices feed a single cross-array scheduler run, so
//!   the pipeline never drains at request boundaries.
//!
//! The legacy per-kernel `sc_reram*` families are thin wrappers over
//! this dispatch (bit-identical — pinned by `tests/request_parity.rs`)
//! and are kept for source compatibility.
//!
//! [`Schedule::Pipelined`]: crate::tile::Schedule::Pipelined

use crate::error::ImgError;
use crate::image::GrayImage;
use crate::scbackend::{CmosScConfig, ScReramConfig};
use crate::tile::{self, ScRunStats, TileEmitter};
use crate::{bilinear, compositing, edge, matting};
use imsc::cost::ScOperation;
use imsc::program::cache::mix;
use imsc::{ProgramSink, RnRefreshPolicy};
use std::ops::Range;

/// One kernel invocation: the kernel, its input images, and its
/// parameters. Images are owned so a request can be queued, batched,
/// and shipped across threads or sockets.
#[derive(Debug, Clone)]
pub enum KernelRequest {
    /// Roberts-cross edge detection over `image`.
    Edge {
        /// Input image.
        image: GrayImage,
    },
    /// Bilinear up-scaling of `src` by integer `factor` (≥ 2).
    Bilinear {
        /// Source image.
        src: GrayImage,
        /// Integer scale factor (≥ 2).
        factor: usize,
    },
    /// Compositing `C = F·α + B·(1−α)` over equal-sized images.
    Compositing {
        /// Foreground image `F`.
        foreground: GrayImage,
        /// Background image `B`.
        background: GrayImage,
        /// Per-pixel α matte.
        alpha: GrayImage,
    },
    /// Matting `α̂ = (I − B) / (F − B)` over equal-sized images.
    Matting {
        /// Composite image `I`.
        image: GrayImage,
        /// Background image `B`.
        background: GrayImage,
        /// Foreground image `F`.
        foreground: GrayImage,
    },
}

/// Which backend executes a [`KernelRequest`] (the paper's four
/// evaluation columns).
#[derive(Debug, Clone, Copy)]
pub enum Backend {
    /// The in-memory SC-ReRAM accelerator (`imsc`) — the default, and
    /// the only backend with hardware-cost statistics and batching.
    ScReram,
    /// Functional CMOS SC with the given SNG configuration.
    Cmos(CmosScConfig),
    /// Bit-serial binary CIM, optionally fault-injected (the seed comes
    /// from [`ScReramConfig::seed`]).
    BinaryCim {
        /// Per-operation bit-flip probability (0.0 = fault-free).
        fault_prob: f64,
    },
    /// Exact software arithmetic.
    Software,
}

/// The result of one dispatched [`KernelRequest`].
#[derive(Debug, Clone)]
pub struct KernelResponse {
    /// The output image.
    pub pixels: GrayImage,
    /// Merged hardware-cost statistics — `Some` on the
    /// [`Backend::ScReram`] path, `None` on the other backends (they
    /// have no accelerator ledger).
    pub stats: Option<ScRunStats>,
}

impl KernelRequest {
    /// Stable kernel name (matches the template-cache key and the
    /// bench/anchor naming).
    #[must_use]
    pub fn kernel_name(&self) -> &'static str {
        match self {
            KernelRequest::Edge { .. } => "edge",
            KernelRequest::Bilinear { .. } => "bilinear",
            KernelRequest::Compositing { .. } => "compositing",
            KernelRequest::Matting { .. } => "matting",
        }
    }

    /// Output dimensions `(width, height)` of a valid request.
    #[must_use]
    pub fn output_dims(&self) -> (usize, usize) {
        match self {
            KernelRequest::Edge { image } => (image.width(), image.height()),
            KernelRequest::Bilinear { src, factor } => {
                (src.width() * factor, src.height() * factor)
            }
            KernelRequest::Compositing { foreground, .. } => {
                (foreground.width(), foreground.height())
            }
            KernelRequest::Matting { image, .. } => (image.width(), image.height()),
        }
    }

    /// Output pixel count — the unit of the service frontend's
    /// cost estimates.
    #[must_use]
    pub fn output_pixels(&self) -> usize {
        let (w, h) = self.output_dims();
        w * h
    }

    /// Validates the request's shape invariants (scale factor, matching
    /// dimensions) without running anything.
    ///
    /// # Errors
    ///
    /// The same parameter/dimension errors the legacy entry points
    /// return.
    pub fn validate(&self) -> Result<(), ImgError> {
        self.view().check()
    }

    /// Coalescing compatibility key: two requests with equal keys have
    /// the same kernel, parameters, and output shape, so a batching
    /// frontend can group them into one scheduling pass (and their
    /// tile-shaped slices hit the same cached templates).
    #[must_use]
    pub fn shape_key(&self) -> u64 {
        let tag = match self {
            KernelRequest::Edge { .. } => 1u64,
            KernelRequest::Bilinear { .. } => 2,
            KernelRequest::Compositing { .. } => 3,
            KernelRequest::Matting { .. } => 4,
        };
        let (w, h) = self.output_dims();
        let mut k = mix(0x5245_515F_5348_4150, tag);
        k = mix(k, w as u64);
        k = mix(k, h as u64);
        if let KernelRequest::Bilinear { factor, .. } = self {
            k = mix(k, *factor as u64);
        }
        k
    }

    /// The kernel's dominant per-output-pixel operation mix, as
    /// `(operation, ops per pixel)` pairs — the input to
    /// `PipelineModel`-based service-time estimates (scouting-level
    /// counts of the kernel's arithmetic stage; encodes and reads ride
    /// inside the per-op pipeline stages).
    #[must_use]
    pub fn op_mix_per_pixel(&self) -> &'static [(ScOperation, usize)] {
        match self {
            // Two XOR gradients + one MAJ blend.
            KernelRequest::Edge { .. } => {
                &[(ScOperation::Subtraction, 2), (ScOperation::Addition, 1)]
            }
            // Three nested MAJ blends.
            KernelRequest::Bilinear { .. } => &[(ScOperation::Addition, 3)],
            // One MAJ blend.
            KernelRequest::Compositing { .. } => &[(ScOperation::Addition, 1)],
            // Two XOR differences + one CORDIV division.
            KernelRequest::Matting { .. } => {
                &[(ScOperation::Subtraction, 2), (ScOperation::Division, 1)]
            }
        }
    }

    /// The borrowed dispatch view of this request.
    pub(crate) fn view(&self) -> KernelView<'_> {
        match self {
            KernelRequest::Edge { image } => KernelView::Edge { image },
            KernelRequest::Bilinear { src, factor } => KernelView::Bilinear {
                src,
                factor: *factor,
            },
            KernelRequest::Compositing {
                foreground,
                background,
                alpha,
            } => KernelView::Compositing {
                foreground,
                background,
                alpha,
            },
            KernelRequest::Matting {
                image,
                background,
                foreground,
            } => KernelView::Matting {
                image,
                background,
                foreground,
            },
        }
    }
}

/// A borrowed view of one kernel invocation — what the dispatch
/// actually works on. The legacy `&GrayImage`-argument wrappers build
/// views directly (no clone), [`KernelRequest`] derives one from its
/// owned images.
#[derive(Debug, Clone, Copy)]
pub(crate) enum KernelView<'a> {
    /// Edge detection.
    Edge {
        /// Input image.
        image: &'a GrayImage,
    },
    /// Bilinear up-scaling.
    Bilinear {
        /// Source image.
        src: &'a GrayImage,
        /// Integer scale factor.
        factor: usize,
    },
    /// Compositing.
    Compositing {
        /// Foreground.
        foreground: &'a GrayImage,
        /// Background.
        background: &'a GrayImage,
        /// α matte.
        alpha: &'a GrayImage,
    },
    /// Matting.
    Matting {
        /// Composite image `I`.
        image: &'a GrayImage,
        /// Background `B`.
        background: &'a GrayImage,
        /// Foreground `F`.
        foreground: &'a GrayImage,
    },
}

impl<'a> KernelView<'a> {
    fn check(&self) -> Result<(), ImgError> {
        match self {
            KernelView::Edge { .. } => Ok(()),
            KernelView::Bilinear { src, factor } => {
                bilinear::check_factor(*factor)?;
                // The output allocation is `input × factor` per side; an
                // absurd factor must fail here, not wrap in
                // `output_dims`/`output_pixels` and allocate garbage.
                let pixels = src
                    .width()
                    .checked_mul(*factor)
                    .and_then(|w| src.height().checked_mul(*factor).map(|h| (w, h)))
                    .and_then(|(w, h)| w.checked_mul(h));
                if pixels.is_none() {
                    return Err(ImgError::InvalidParameter(
                        "scale factor overflows the output dimensions",
                    ));
                }
                Ok(())
            }
            KernelView::Compositing {
                foreground,
                background,
                alpha,
            } => compositing::check_inputs(foreground, background, alpha),
            KernelView::Matting {
                image,
                background,
                foreground,
            } => matting::check_inputs(image, background, foreground),
        }
    }

    fn output_dims(&self) -> (usize, usize) {
        match self {
            KernelView::Edge { image } => (image.width(), image.height()),
            KernelView::Bilinear { src, factor } => (src.width() * factor, src.height() * factor),
            KernelView::Compositing { foreground, .. } => (foreground.width(), foreground.height()),
            KernelView::Matting { image, .. } => (image.width(), image.height()),
        }
    }

    fn emitter(self) -> AnyEmitter<'a> {
        match self {
            KernelView::Edge { image } => AnyEmitter::Edge(edge::Emit { img: image }),
            KernelView::Bilinear { src, factor } => {
                AnyEmitter::Bilinear(bilinear::Emit { src, factor })
            }
            KernelView::Compositing {
                foreground,
                background,
                alpha,
            } => AnyEmitter::Compositing(compositing::Emit {
                f: foreground,
                b: background,
                alpha,
            }),
            KernelView::Matting {
                image,
                background,
                foreground,
            } => AnyEmitter::Matting(matting::Emit {
                i: image,
                b: background,
                f: foreground,
            }),
        }
    }
}

/// The four kernels' emitters behind one [`TileEmitter`], so mixed
/// batches can share a single scheduling pass. Every method delegates
/// to the wrapped kernel emitter — cache keys, refresh policies, and
/// emitted programs are exactly the per-kernel ones.
pub(crate) enum AnyEmitter<'a> {
    Edge(edge::Emit<'a>),
    Bilinear(bilinear::Emit<'a>),
    Compositing(compositing::Emit<'a>),
    Matting(matting::Emit<'a>),
}

impl TileEmitter for AnyEmitter<'_> {
    fn kernel(&self) -> &'static str {
        match self {
            AnyEmitter::Edge(e) => e.kernel(),
            AnyEmitter::Bilinear(e) => e.kernel(),
            AnyEmitter::Compositing(e) => e.kernel(),
            AnyEmitter::Matting(e) => e.kernel(),
        }
    }

    fn default_policy(&self) -> RnRefreshPolicy {
        match self {
            AnyEmitter::Edge(e) => e.default_policy(),
            AnyEmitter::Bilinear(e) => e.default_policy(),
            AnyEmitter::Compositing(e) => e.default_policy(),
            AnyEmitter::Matting(e) => e.default_policy(),
        }
    }

    fn emit<S: ProgramSink>(&self, rows: Range<usize>, sink: &mut S) {
        match self {
            AnyEmitter::Edge(e) => e.emit(rows, sink),
            AnyEmitter::Bilinear(e) => e.emit(rows, sink),
            AnyEmitter::Compositing(e) => e.emit(rows, sink),
            AnyEmitter::Matting(e) => e.emit(rows, sink),
        }
    }

    fn frame_digest(&self) -> Option<u64> {
        match self {
            AnyEmitter::Edge(e) => e.frame_digest(),
            AnyEmitter::Bilinear(e) => e.frame_digest(),
            AnyEmitter::Compositing(e) => e.frame_digest(),
            AnyEmitter::Matting(e) => e.frame_digest(),
        }
    }
}

/// The SC-ReRAM dispatch body shared by [`run`] and the legacy
/// per-kernel wrappers: validate the view, run its emitter through the
/// tiled scheduler, assemble pixels and stats.
pub(crate) fn run_sc_view(
    view: KernelView<'_>,
    cfg: &ScReramConfig,
) -> Result<(GrayImage, ScRunStats), ImgError> {
    view.check()?;
    let (width, height) = view.output_dims();
    let (tiles, meta) = tile::run_tile_programs(height, cfg, view.emitter())?;
    let (pixels, stats) = tile::assemble(tiles, meta);
    Ok((GrayImage::from_pixels(width, height, pixels)?, stats))
}

/// Runs one request on the SC-ReRAM backend — the service frontend's
/// (and the benches') single entry point. Equivalent to
/// [`run_on`]`(req, &Backend::ScReram, cfg)`.
///
/// Note: like the legacy entry points, this does **not** call
/// [`ScReramConfig::validate`] — deep configuration conflicts keep
/// their documented library behaviour (e.g. faults silently force the
/// optimizer off). Admission-time validation is the service layer's
/// job.
///
/// # Errors
///
/// Parameter, dimension, or substrate errors.
pub fn run(req: &KernelRequest, cfg: &ScReramConfig) -> Result<KernelResponse, ImgError> {
    let (pixels, stats) = run_sc_view(req.view(), cfg)?;
    Ok(KernelResponse {
        pixels,
        stats: Some(stats),
    })
}

/// Runs one request on an explicit [`Backend`]. The SC-ReRAM arm is
/// [`run`]; the CMOS / binary-CIM / software arms dispatch to the
/// corresponding per-kernel baselines (no [`ScRunStats`] — those
/// backends have no accelerator ledger).
///
/// # Errors
///
/// Parameter, dimension, or backend errors.
pub fn run_on(
    req: &KernelRequest,
    backend: &Backend,
    cfg: &ScReramConfig,
) -> Result<KernelResponse, ImgError> {
    let pixels = match backend {
        Backend::ScReram => return run(req, cfg),
        Backend::Cmos(c) => match req {
            KernelRequest::Edge { image } => edge::sc_cmos(image, c)?,
            KernelRequest::Bilinear { src, factor } => bilinear::sc_cmos(src, *factor, c)?,
            KernelRequest::Compositing {
                foreground,
                background,
                alpha,
            } => compositing::sc_cmos(foreground, background, alpha, c)?,
            KernelRequest::Matting {
                image,
                background,
                foreground,
            } => matting::sc_cmos(image, background, foreground, c)?,
        },
        Backend::BinaryCim { fault_prob } => match req {
            KernelRequest::Edge { image } => edge::binary_cim(image, *fault_prob, cfg.seed)?,
            KernelRequest::Bilinear { src, factor } => {
                bilinear::binary_cim(src, *factor, *fault_prob, cfg.seed)?
            }
            KernelRequest::Compositing {
                foreground,
                background,
                alpha,
            } => compositing::binary_cim(foreground, background, alpha, *fault_prob, cfg.seed)?,
            KernelRequest::Matting {
                image,
                background,
                foreground,
            } => matting::binary_cim(image, background, foreground, *fault_prob, cfg.seed)?,
        },
        Backend::Software => match req {
            KernelRequest::Edge { image } => edge::software(image),
            KernelRequest::Bilinear { src, factor } => bilinear::software(src, *factor)?,
            KernelRequest::Compositing {
                foreground,
                background,
                alpha,
            } => compositing::software(foreground, background, alpha)?,
            KernelRequest::Matting {
                image,
                background,
                foreground,
            } => matting::software(image, background, foreground)?,
        },
    };
    Ok(KernelResponse {
        pixels,
        stats: None,
    })
}

/// Runs a batch of requests on the SC-ReRAM backend as **one**
/// scheduling pass — see [`crate::tile`]'s batch-runner documentation
/// for the coalescing semantics. Responses come back in request order
/// and each frame's pixels, ledger, and RN epochs are bit-identical to
/// running that request alone through [`run`] (fault-free substrates;
/// the shared [`PipelineReport`](imsc::program::sched::PipelineReport)
/// in each response's stats describes the whole batch).
///
/// Requests may mix kernels and shapes; grouping compatible shapes is
/// a throughput optimization (better template reuse), not a
/// correctness requirement. With [`ScReramConfig::trace_replay`] set,
/// the batch falls back to per-request runs (a stitched replay cannot
/// be attributed back to frames).
///
/// # Errors
///
/// The first failing request's error; shape validation runs for every
/// request before any work starts.
pub fn run_batch(
    reqs: &[KernelRequest],
    cfg: &ScReramConfig,
) -> Result<Vec<KernelResponse>, ImgError> {
    for r in reqs {
        r.validate()?;
    }
    if cfg.trace_replay {
        return reqs.iter().map(|r| run(r, cfg)).collect();
    }
    let jobs: Vec<tile::BatchJob<AnyEmitter<'_>>> = reqs
        .iter()
        .map(|r| {
            let view = r.view();
            tile::BatchJob {
                height: view.output_dims().1,
                emitter: view.emitter(),
            }
        })
        .collect();
    let outs = tile::run_batch_programs(&jobs, cfg)?;
    reqs.iter()
        .zip(outs)
        .map(|(r, (tiles, meta))| {
            let (width, height) = r.view().output_dims();
            let (pixels, stats) = tile::assemble(tiles, meta);
            Ok(KernelResponse {
                pixels: GrayImage::from_pixels(width, height, pixels)?,
                stats: Some(stats),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    #[test]
    fn shape_keys_separate_kernels_and_shapes() {
        let img = synth::gradient(8, 8, true);
        let edge = KernelRequest::Edge { image: img.clone() };
        let edge_same = KernelRequest::Edge {
            image: synth::checkerboard(8, 8, 2),
        };
        let edge_other = KernelRequest::Edge {
            image: synth::gradient(16, 8, true),
        };
        let up2 = KernelRequest::Bilinear {
            src: img.clone(),
            factor: 2,
        };
        let up3 = KernelRequest::Bilinear {
            src: img,
            factor: 3,
        };
        // Same kernel + same shape coalesce regardless of content.
        assert_eq!(edge.shape_key(), edge_same.shape_key());
        assert_ne!(edge.shape_key(), edge_other.shape_key());
        assert_ne!(edge.shape_key(), up2.shape_key());
        assert_ne!(up2.shape_key(), up3.shape_key());
    }

    #[test]
    fn output_dims_and_names() {
        let req = KernelRequest::Bilinear {
            src: synth::gradient(6, 4, true),
            factor: 2,
        };
        assert_eq!(req.output_dims(), (12, 8));
        assert_eq!(req.output_pixels(), 96);
        assert_eq!(req.kernel_name(), "bilinear");
        assert!(req.validate().is_ok());
        let bad = KernelRequest::Bilinear {
            src: synth::gradient(6, 4, true),
            factor: 1,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn op_mix_covers_every_kernel() {
        let img = synth::gradient(4, 4, true);
        for req in [
            KernelRequest::Edge { image: img.clone() },
            KernelRequest::Bilinear {
                src: img.clone(),
                factor: 2,
            },
            KernelRequest::Compositing {
                foreground: img.clone(),
                background: img.clone(),
                alpha: img.clone(),
            },
            KernelRequest::Matting {
                image: img.clone(),
                background: img.clone(),
                foreground: img,
            },
        ] {
            assert!(!req.op_mix_per_pixel().is_empty(), "{}", req.kernel_name());
        }
    }
}
