//! Grayscale 8-bit images with PGM I/O.

use crate::error::ImgError;

/// An 8-bit grayscale image in row-major order.
///
/// # Example
///
/// ```
/// use imgproc::GrayImage;
///
/// let img = GrayImage::from_fn(4, 2, |x, y| (x * 10 + y) as u8);
/// assert_eq!(img.get(3, 1), Some(31));
/// assert_eq!(img.pixels().len(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl GrayImage {
    /// Creates a black image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        GrayImage {
            width,
            height,
            data: vec![0; width * height],
        }
    }

    /// Creates an image by evaluating `f(x, y)` per pixel.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn from_fn<F: FnMut(usize, usize) -> u8>(width: usize, height: usize, mut f: F) -> Self {
        let mut img = GrayImage::new(width, height);
        for y in 0..height {
            for x in 0..width {
                img.data[y * width + x] = f(x, y);
            }
        }
        img
    }

    /// Creates an image from raw row-major pixels.
    ///
    /// # Errors
    ///
    /// Returns [`ImgError::InvalidParameter`] if the pixel count does not
    /// equal `width·height` or a dimension is zero.
    pub fn from_pixels(width: usize, height: usize, data: Vec<u8>) -> Result<Self, ImgError> {
        if width == 0 || height == 0 {
            return Err(ImgError::InvalidParameter(
                "image dimensions must be nonzero",
            ));
        }
        if data.len() != width * height {
            return Err(ImgError::InvalidParameter(
                "pixel count does not match dimensions",
            ));
        }
        Ok(GrayImage {
            width,
            height,
            data,
        })
    }

    /// Image width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// The raw pixels, row-major.
    #[must_use]
    pub fn pixels(&self) -> &[u8] {
        &self.data
    }

    /// Pixel at `(x, y)`, or `None` out of bounds.
    #[must_use]
    pub fn get(&self, x: usize, y: usize) -> Option<u8> {
        if x < self.width && y < self.height {
            Some(self.data[y * self.width + x])
        } else {
            None
        }
    }

    /// Pixel at `(x, y)` with edge clamping (never fails).
    #[must_use]
    pub fn get_clamped(&self, x: isize, y: isize) -> u8 {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.data[cy * self.width + cx]
    }

    /// Sets pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics out of bounds.
    pub fn set(&mut self, x: usize, y: usize, value: u8) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.width + x] = value;
    }

    /// Whether another image has identical dimensions.
    #[must_use]
    pub fn same_dims(&self, other: &GrayImage) -> bool {
        self.width == other.width && self.height == other.height
    }

    /// Mean pixel intensity.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.data.iter().map(|&p| f64::from(p)).sum::<f64>() / self.data.len() as f64
    }

    /// Serializes to binary PGM (P5).
    #[must_use]
    pub fn to_pgm(&self) -> Vec<u8> {
        let mut out = format!("P5\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.extend_from_slice(&self.data);
        out
    }

    /// Parses a binary PGM (P5) byte buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ImgError::ParsePgm`] on malformed headers or truncated
    /// pixel data.
    pub fn from_pgm(bytes: &[u8]) -> Result<Self, ImgError> {
        let err = |m: &str| ImgError::ParsePgm(m.to_string());
        // Parse the three header tokens (magic, width, height, maxval),
        // skipping whitespace and `#` comments.
        let mut pos = 0usize;
        let mut tokens: Vec<String> = Vec::new();
        while tokens.len() < 4 && pos < bytes.len() {
            while pos < bytes.len() {
                if bytes[pos] == b'#' {
                    while pos < bytes.len() && bytes[pos] != b'\n' {
                        pos += 1;
                    }
                } else if bytes[pos].is_ascii_whitespace() {
                    pos += 1;
                } else {
                    break;
                }
            }
            let start = pos;
            while pos < bytes.len() && !bytes[pos].is_ascii_whitespace() {
                pos += 1;
            }
            if start < pos {
                tokens.push(
                    std::str::from_utf8(&bytes[start..pos])
                        .map_err(|_| err("non-utf8 header"))?
                        .to_string(),
                );
            }
        }
        if tokens.len() < 4 {
            return Err(err("truncated header"));
        }
        if tokens[0] != "P5" {
            return Err(err("not a binary pgm (P5)"));
        }
        let width: usize = tokens[1].parse().map_err(|_| err("bad width"))?;
        let height: usize = tokens[2].parse().map_err(|_| err("bad height"))?;
        let maxval: usize = tokens[3].parse().map_err(|_| err("bad maxval"))?;
        if maxval != 255 {
            return Err(err("only maxval 255 supported"));
        }
        // Exactly one whitespace byte separates header from data.
        pos += 1;
        let need = width * height;
        if bytes.len() < pos + need {
            return Err(err("truncated pixel data"));
        }
        GrayImage::from_pixels(width, height, bytes[pos..pos + need].to_vec())
            .map_err(|_| err("inconsistent dimensions"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_get() {
        let img = GrayImage::from_fn(3, 2, |x, y| (x + 10 * y) as u8);
        assert_eq!(img.get(2, 1), Some(12));
        assert_eq!(img.get(3, 0), None);
        assert_eq!(img.get_clamped(-5, 99), img.get(0, 1).unwrap());
    }

    #[test]
    fn pgm_round_trip() {
        let img = GrayImage::from_fn(7, 5, |x, y| (x * y * 9 % 256) as u8);
        let bytes = img.to_pgm();
        let back = GrayImage::from_pgm(&bytes).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn pgm_with_comments() {
        let mut bytes = b"P5\n# a comment\n2 2\n255\n".to_vec();
        bytes.extend_from_slice(&[1, 2, 3, 4]);
        let img = GrayImage::from_pgm(&bytes).unwrap();
        assert_eq!(img.pixels(), &[1, 2, 3, 4]);
    }

    #[test]
    fn pgm_errors() {
        assert!(GrayImage::from_pgm(b"P2\n2 2\n255\n").is_err());
        assert!(GrayImage::from_pgm(b"P5\n2 2\n255\n\x01").is_err()); // truncated
        assert!(GrayImage::from_pgm(b"P5\n2 2\n65535\n").is_err());
    }

    #[test]
    fn from_pixels_validation() {
        assert!(GrayImage::from_pixels(2, 2, vec![0; 3]).is_err());
        assert!(GrayImage::from_pixels(0, 2, vec![]).is_err());
        assert!(GrayImage::from_pixels(2, 2, vec![0; 4]).is_ok());
    }

    #[test]
    fn mean_intensity() {
        let img = GrayImage::from_fn(2, 2, |x, _| if x == 0 { 0 } else { 200 });
        assert_eq!(img.mean(), 100.0);
    }
}
