//! Deterministic synthetic image generators.
//!
//! The paper does not name its benchmark images, so the reproduction
//! evaluates on deterministic synthetic families exercising the relevant
//! structure: smooth ramps (interpolation accuracy), hard edges
//! (compositing boundaries), textures (SSIM sensitivity), and soft alpha
//! mattes (matting).

use crate::image::GrayImage;
use sc_core::rng::Xoshiro256;

/// A horizontal or vertical linear ramp.
#[must_use]
pub fn gradient(width: usize, height: usize, horizontal: bool) -> GrayImage {
    GrayImage::from_fn(width, height, |x, y| {
        let (pos, span) = if horizontal {
            (x, width.max(2) - 1)
        } else {
            (y, height.max(2) - 1)
        };
        (pos * 255 / span.max(1)) as u8
    })
}

/// A checkerboard with `cell`-pixel squares.
#[must_use]
pub fn checkerboard(width: usize, height: usize, cell: usize) -> GrayImage {
    let cell = cell.max(1);
    GrayImage::from_fn(width, height, |x, y| {
        if (x / cell + y / cell).is_multiple_of(2) {
            230
        } else {
            25
        }
    })
}

/// Smooth Gaussian-like blobs on a dark background.
#[must_use]
pub fn blobs(width: usize, height: usize, count: usize, seed: u64) -> GrayImage {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let centers: Vec<(f64, f64, f64)> = (0..count.max(1))
        .map(|_| {
            (
                rng.next_f64() * width as f64,
                rng.next_f64() * height as f64,
                (0.1 + 0.2 * rng.next_f64()) * width.min(height) as f64,
            )
        })
        .collect();
    GrayImage::from_fn(width, height, |x, y| {
        let mut v = 20.0;
        for &(cx, cy, r) in &centers {
            let dx = x as f64 - cx;
            let dy = y as f64 - cy;
            v += 210.0 * (-(dx * dx + dy * dy) / (2.0 * r * r)).exp();
        }
        v.clamp(0.0, 255.0) as u8
    })
}

/// Bilinear value noise: random lattice values interpolated smoothly —
/// a natural-texture stand-in.
#[must_use]
pub fn value_noise(width: usize, height: usize, scale: usize, seed: u64) -> GrayImage {
    let scale = scale.max(1);
    let gw = width.div_ceil(scale) + 2;
    let gh = height.div_ceil(scale) + 2;
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let grid: Vec<f64> = (0..gw * gh).map(|_| rng.next_f64()).collect();
    GrayImage::from_fn(width, height, |x, y| {
        let fx = x as f64 / scale as f64;
        let fy = y as f64 / scale as f64;
        let x0 = fx.floor() as usize;
        let y0 = fy.floor() as usize;
        let tx = fx - x0 as f64;
        let ty = fy - y0 as f64;
        let g = |gx: usize, gy: usize| grid[(gy.min(gh - 1)) * gw + gx.min(gw - 1)];
        let top = g(x0, y0) * (1.0 - tx) + g(x0 + 1, y0) * tx;
        let bottom = g(x0, y0 + 1) * (1.0 - tx) + g(x0 + 1, y0 + 1) * tx;
        ((top * (1.0 - ty) + bottom * ty) * 255.0) as u8
    })
}

/// A soft-edged elliptical alpha matte: 255 inside the object, 0 outside,
/// with a smooth transition band — the shape of a real foreground mask.
#[must_use]
pub fn soft_matte(width: usize, height: usize, seed: u64) -> GrayImage {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let cx = width as f64 * (0.35 + 0.3 * rng.next_f64());
    let cy = height as f64 * (0.35 + 0.3 * rng.next_f64());
    let rx = width as f64 * (0.2 + 0.15 * rng.next_f64());
    let ry = height as f64 * (0.2 + 0.15 * rng.next_f64());
    let edge = 0.25; // transition band width as a fraction of the radius
    GrayImage::from_fn(width, height, |x, y| {
        let dx = (x as f64 - cx) / rx;
        let dy = (y as f64 - cy) / ry;
        let d = (dx * dx + dy * dy).sqrt();
        let alpha = if d <= 1.0 - edge {
            1.0
        } else if d >= 1.0 + edge {
            0.0
        } else {
            // Smoothstep across the band.
            let t = 1.0 - (d - (1.0 - edge)) / (2.0 * edge);
            t * t * (3.0 - 2.0 * t)
        };
        (alpha * 255.0).round() as u8
    })
}

/// A named benchmark pair/triple set for the three applications.
#[derive(Debug, Clone)]
pub struct AppImages {
    /// Foreground image.
    pub foreground: GrayImage,
    /// Background image.
    pub background: GrayImage,
    /// Alpha matte.
    pub alpha: GrayImage,
}

/// The default benchmark inputs at the given resolution: a blob
/// foreground over a gradient-texture background with a soft matte.
#[must_use]
pub fn app_images(width: usize, height: usize, seed: u64) -> AppImages {
    AppImages {
        foreground: blobs(width, height, 3, seed ^ 0xF0),
        background: value_noise(width, height, width.max(8) / 8, seed ^ 0xB0),
        alpha: soft_matte(width, height, seed ^ 0xA0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_spans_full_range() {
        let g = gradient(64, 8, true);
        assert_eq!(g.get(0, 0), Some(0));
        assert_eq!(g.get(63, 0), Some(255));
    }

    #[test]
    fn checkerboard_alternates() {
        let c = checkerboard(8, 8, 2);
        assert_ne!(c.get(0, 0), c.get(2, 0));
        assert_eq!(c.get(0, 0), c.get(4, 0));
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(blobs(16, 16, 3, 7), blobs(16, 16, 3, 7));
        assert_eq!(value_noise(16, 16, 4, 7), value_noise(16, 16, 4, 7));
        assert_ne!(value_noise(16, 16, 4, 7), value_noise(16, 16, 4, 8));
    }

    #[test]
    fn matte_has_interior_exterior_and_edges() {
        let m = soft_matte(64, 64, 3);
        let pixels = m.pixels();
        assert!(pixels.contains(&255), "no interior");
        assert!(pixels.contains(&0), "no exterior");
        assert!(
            pixels.iter().any(|&p| p > 20 && p < 235),
            "no soft transition band"
        );
    }

    #[test]
    fn app_images_share_dimensions() {
        let set = app_images(24, 24, 9);
        assert!(set.foreground.same_dims(&set.background));
        assert!(set.foreground.same_dims(&set.alpha));
    }

    #[test]
    fn noise_has_texture() {
        let n = value_noise(32, 32, 4, 11);
        let mean = n.mean();
        assert!(mean > 60.0 && mean < 200.0, "mean {mean}");
        let var: f64 = n
            .pixels()
            .iter()
            .map(|&p| (f64::from(p) - mean) * (f64::from(p) - mean))
            .sum::<f64>()
            / n.pixels().len() as f64;
        assert!(var > 100.0, "variance {var}");
    }
}
