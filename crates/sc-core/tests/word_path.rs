//! Differential properties of the word-level `BitStream` fast paths
//! against their per-bit reference semantics.

use proptest::prelude::*;
use sc_core::rng::Xoshiro256;
use sc_core::BitStream;

fn random_stream(n: usize, seed: u64) -> BitStream {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    BitStream::from_fn(n, |_| rng.next_f64() < 0.5)
}

proptest! {
    #[test]
    fn rotate_left_matches_per_bit_reference(n in 1usize..300, k in 0usize..700, seed in any::<u64>()) {
        let s = random_stream(n, seed);
        let rotated = s.rotate_left(k);
        // Per-bit reference: out[i] = s[(i + k) mod n].
        let reference = BitStream::from_fn(n, |i| s.get((i + k) % n).unwrap_or(false));
        prop_assert_eq!(&rotated, &reference, "n={} k={}", n, k);
        prop_assert_eq!(rotated.count_ones(), s.count_ones());
    }

    #[test]
    fn rotate_left_is_cyclic(n in 1usize..200, k in 0usize..200, seed in any::<u64>()) {
        let s = random_stream(n, seed);
        // Rotating by k then by n - (k mod n) is the identity.
        let back = s.rotate_left(k).rotate_left(n - k % n);
        prop_assert_eq!(back, s);
    }

    #[test]
    fn from_bools_round_trips_any_iterator(bits in proptest::collection::vec(any::<bool>(), 0usize..300)) {
        let s = BitStream::from_bools(bits.iter().copied());
        prop_assert_eq!(s.len(), bits.len());
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(s.get(i), Some(b));
        }
        // Capacity reservation must not change the packed representation.
        let pushed: BitStream = bits.iter().copied().collect();
        prop_assert_eq!(s, pushed);
    }

    #[test]
    fn extend_matches_repeated_push(n1 in 0usize..150, n2 in 0usize..150, seed in any::<u64>()) {
        let head = random_stream(n1, seed ^ 1);
        let tail = random_stream(n2, seed ^ 2);
        let mut extended = head.clone();
        extended.extend(tail.iter());
        let mut pushed = head;
        for b in tail.iter() {
            pushed.push(b);
        }
        prop_assert_eq!(extended, pushed);
    }

    #[test]
    fn in_place_ops_match_allocating_ops(n in 1usize..300, seed in any::<u64>()) {
        let a = random_stream(n, seed ^ 1);
        let b = random_stream(n, seed ^ 2);
        let mut x = a.clone();
        x.and_assign(&b).expect("equal lengths");
        prop_assert_eq!(x, a.and(&b).expect("equal lengths"));
        let mut x = a.clone();
        x.or_assign(&b).expect("equal lengths");
        prop_assert_eq!(x, a.or(&b).expect("equal lengths"));
        let mut x = a.clone();
        x.xor_assign(&b).expect("equal lengths");
        prop_assert_eq!(x, a.xor(&b).expect("equal lengths"));
        let mut x = a.clone();
        prop_assert!(x.and_assign(&random_stream(n + 1, seed)).is_err());
    }
}
