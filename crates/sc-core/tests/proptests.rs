//! Property-based tests for the stochastic-computing core.

use proptest::prelude::*;
use sc_core::correlation::{overlap, scc};
use sc_core::div::jk_divide;
use sc_core::prelude::*;

proptest! {
    // --- BitStream algebra ---------------------------------------------

    #[test]
    fn de_morgan_holds(bits_a in proptest::collection::vec(any::<bool>(), 1..300),
                       seed in any::<u64>()) {
        let a: BitStream = bits_a.iter().copied().collect();
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let b = BitStream::from_fn(a.len(), |_| rng.next_f64() < 0.5);
        let lhs = a.and(&b).expect("equal lengths").not();
        let rhs = a.not().or(&b.not()).expect("equal lengths");
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn xor_is_add_without_carry(bits in proptest::collection::vec(any::<bool>(), 1..300),
                                seed in any::<u64>()) {
        let a: BitStream = bits.iter().copied().collect();
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let b = BitStream::from_fn(a.len(), |_| rng.next_f64() < 0.5);
        let xor = a.xor(&b).expect("equal lengths");
        let and = a.and(&b).expect("equal lengths");
        let or = a.or(&b).expect("equal lengths");
        // a ⊕ b = (a ∨ b) ∧ ¬(a ∧ b)
        let expect = or.and(&and.not()).expect("equal lengths");
        prop_assert_eq!(xor, expect);
    }

    #[test]
    fn maj_is_monotone(seed in any::<u64>(), n in 1usize..300) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let a = BitStream::from_fn(n, |_| rng.next_f64() < 0.5);
        let b = BitStream::from_fn(n, |_| rng.next_f64() < 0.5);
        let c = BitStream::from_fn(n, |_| rng.next_f64() < 0.5);
        let m = a.maj3(&b, &c).expect("equal lengths");
        // Raising any input can only raise the majority.
        let m_up = a.or(&c).expect("equal lengths")
            .maj3(&b, &c).expect("equal lengths");
        prop_assert_eq!(m_up.and(&m).expect("equal lengths"), m);
    }

    // --- RNG families ---------------------------------------------------

    #[test]
    fn lfsr_periods_divide_the_maximal_period(width in 3u32..=10, seed in 0u64..10_000) {
        // Map the raw seed into the nonzero state space of this width.
        let state = (seed % ((1u64 << width) - 1)) + 1;
        let lfsr = Lfsr::maximal(width, state).expect("nonzero seed in range");
        prop_assert_eq!(lfsr.period(), (1u64 << width) - 1);
    }

    #[test]
    fn sobol_prefixes_are_balanced(dim in 0usize..8, k in 1u32..=6) {
        // Every 2^k-point prefix hits each dyadic bucket exactly once.
        let mut q = Sobol::new(dim, k).expect("dimension in table");
        let buckets = 1usize << k;
        let mut seen = vec![0u32; buckets];
        for _ in 0..buckets {
            seen[q.next_value() as usize] += 1;
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }

    // --- SNG + conversion round trips ------------------------------------

    #[test]
    fn sobol_sng_estimates_within_one_over_n(x in 0u8..=255, log_n in 5u32..=10) {
        let n = 1usize << log_n;
        let mut sng = Sng::new(Sobol::new(0, 16).expect("dimension in table"));
        let s = sng.generate_fixed(Fixed::from_u8(x), n);
        let expect = f64::from(x) / 256.0;
        prop_assert!((s.value() - expect).abs() <= 1.0 / n as f64 + 1.0 / 256.0,
            "x={x} n={n}: {} vs {expect}", s.value());
    }

    #[test]
    fn counter_converter_equals_ideal_popcount(bits in proptest::collection::vec(any::<bool>(), 1..256)) {
        let s: BitStream = bits.iter().copied().collect();
        let mut c = CounterConverter::new(16).expect("valid width");
        c.clock_stream(&s);
        prop_assert_eq!(c.count(), s.count_ones());
        let ideal = to_binary(&s, 8).expect("nonempty");
        let from_counter = Prob::saturating(c.value()).to_fixed(8).expect("valid width");
        prop_assert_eq!(ideal, from_counter);
    }

    // --- correlation ------------------------------------------------------

    #[test]
    fn overlap_table_is_consistent_with_scc_sign(xa in 1u8..=254, xb in 1u8..=254,
                                                 seed in 0u64..300) {
        let mut sng = Sng::new(UniformSource::seed_from_u64(seed));
        let (a, b) = sng.generate_correlated(
            Fixed::from_u8(xa), Fixed::from_u8(xb), 512).expect("equal widths");
        let o = overlap(&a, &b).expect("equal lengths");
        // Correlated generation nests the streams: the smaller operand's
        // ones are a subset of the larger's.
        prop_assert_eq!(o.only_a.min(o.only_b), 0);
        if a.count_ones() > 0 && b.count_ones() > 0
            && a.count_ones() < 512 && b.count_ones() < 512 {
            let c = scc(&a, &b).expect("equal lengths");
            prop_assert!(c > 0.99, "scc {c}");
        }
    }

    // --- division ----------------------------------------------------------

    #[test]
    fn jk_division_is_bounded(pj in 0.05f64..0.95, pk in 0.05f64..0.95, seed in 0u64..200) {
        let n = 2048;
        let mut a = Sng::new(UniformSource::seed_from_u64(seed * 2 + 1));
        let mut b = Sng::new(UniformSource::seed_from_u64(seed * 2 + 2));
        let j = a.generate_prob(Prob::saturating(pj), n);
        let k = b.generate_prob(Prob::saturating(pk), n);
        let q = jk_divide(&j, &k).expect("equal lengths");
        let expect = pj / (pj + pk);
        prop_assert!((q.value() - expect).abs() < 0.12,
            "jk {} vs {expect}", q.value());
    }

    // --- fixed-point --------------------------------------------------------

    #[test]
    fn gt_fraction_matches_rational_comparison(araw in 0u64..4096, ab in 1u32..=6,
                                               braw in 0u64..4096, bb in 1u32..=6) {
        // Map raw draws into each width's value range by construction.
        let av = araw % (1 << ab);
        let bv = braw % (1 << bb);
        let a = Fixed::new(av, ab).expect("in range");
        let b = Fixed::new(bv, bb).expect("in range");
        let exact = (av as f64 / (1u64 << ab) as f64) > (bv as f64 / (1u64 << bb) as f64);
        prop_assert_eq!(a.gt_fraction(b), exact);
    }
}
