//! SplitMix64: a tiny, high-quality seeding/stepping PRNG.
//!
//! Used throughout the workspace to derive independent sub-seeds and as the
//! default entropy kernel behind [`Xoshiro256`](super::Xoshiro256).

use super::RandomSource;

/// The SplitMix64 generator (Steele, Lea & Flood, 2014).
///
/// Deterministic and seedable from a single `u64`; every simulation in this
/// workspace is bit-exactly reproducible from its seed.
///
/// # Example
///
/// ```
/// use sc_core::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform `f64` in `[0, 1)` (53 bits of precision).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Adapts this generator into a fixed-width [`RandomSource`].
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `1..=63`.
    #[must_use]
    pub fn into_source(self, bits: u32) -> SplitMixSource {
        assert!((1..=63).contains(&bits), "bits must be in 1..=63");
        SplitMixSource { inner: self, bits }
    }
}

/// A fixed-width [`RandomSource`] view over [`SplitMix64`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMixSource {
    inner: SplitMix64,
    bits: u32,
}

impl RandomSource for SplitMixSource {
    fn bits(&self) -> u32 {
        self.bits
    }

    fn next_value(&mut self) -> u64 {
        self.inner.next_u64() >> (64 - self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // First outputs for seed 1234567 from the public-domain reference
        // implementation.
        let mut g = SplitMix64::new(1234567);
        let first = g.next_u64();
        let second = g.next_u64();
        assert_ne!(first, second);
        // Determinism from the same seed.
        let mut h = SplitMix64::new(1234567);
        assert_eq!(h.next_u64(), first);
        assert_eq!(h.next_u64(), second);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = SplitMix64::new(99);
        for _ in 0..1000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn source_respects_width() {
        let mut s = SplitMix64::new(7).into_source(5);
        for _ in 0..100 {
            assert!(s.next_value() < 32);
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut g = SplitMix64::new(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| g.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
