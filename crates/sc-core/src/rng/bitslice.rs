//! Bit-sliced Bernoulli sampling: 64 biased coin flips per comparison.
//!
//! The in-memory TRNG of the paper fills a whole array row with random
//! bits in a *single step* (§III-A), so simulating it bit-by-bit is pure
//! overhead. This module provides the word-parallel equivalent: each of
//! 64 lanes carries an independent Bernoulli(`tᵢ/2^k`) draw, where the
//! per-lane thresholds `tᵢ` are presented as `k` *bit-plane* masks
//! (MSB first). One uniform random word per plane drives the classic
//! binary-expansion comparison
//!
//! ```text
//! lt |= eq & t_plane & !r      (lanes decided "below threshold")
//! eq &= !(r ^ t_plane)         (lanes still undecided)
//! ```
//!
//! which terminates, in expectation, after ~2 planes once the undecided
//! mask empties — so a 64-lane draw costs a handful of word ops instead
//! of 64 floating-point comparisons, while `P(lane i) = tᵢ/2^k` holds
//! *exactly*.

/// Draws 64 parallel Bernoulli bits from threshold bit-planes.
///
/// `planes[j]` is the mask of lanes whose threshold has bit
/// `planes.len() - 1 - j` set (i.e. planes are ordered MSB first);
/// `draw` must yield independent uniform 64-bit words. Lane `i` of the
/// result is 1 with probability `tᵢ / 2^planes.len()` exactly, where
/// `tᵢ` is lane `i`'s threshold.
///
/// The comparison early-exits as soon as every lane is decided — or as
/// soon as no undecided lane has a threshold bit left, in which case the
/// undecided lanes can only resolve to "not below" and the result is
/// already final. For the all-lanes-at-`2^(k-1)` case (ideal 0.5 cells)
/// that means exactly one `draw`, independent of the precision
/// `planes.len()`.
/// # Panics
///
/// Panics if more than 32 planes are supplied.
#[must_use]
pub fn bernoulli_words<F: FnMut() -> u64>(planes: &[u64], mut draw: F) -> u64 {
    // suffix[j] = OR of planes[j..]: which lanes still have a threshold
    // bit at or after plane j.
    assert!(planes.len() <= 32, "more than 32 threshold planes");
    let mut suffix = [0u64; 33];
    for j in (0..planes.len()).rev() {
        suffix[j] = suffix[j + 1] | planes[j];
    }
    let mut lt = 0u64;
    let mut eq = !0u64;
    for (j, &t) in planes.iter().enumerate() {
        if eq & suffix[j] == 0 {
            break;
        }
        let r = draw();
        lt |= eq & t & !r;
        eq &= !(r ^ t);
        if eq == 0 {
            break;
        }
    }
    lt
}

/// Quantizes a probability to a `bits`-bit threshold for
/// [`bernoulli_words`]: `round(p · 2^bits)`, clamped to `[0, 2^bits]`.
///
/// A threshold of `2^bits` cannot be represented in `bits` planes (it
/// means certainty); callers that admit `p = 1` must special-case it.
/// `p = 0.5` maps to exactly `2^(bits-1)`, so ideal cells lose nothing
/// to quantization.
///
/// # Panics
///
/// Panics if `bits` is not in `1..=32` or `p` is not in `[0, 1]`.
#[must_use]
pub fn probability_threshold(p: f64, bits: u32) -> u64 {
    assert!((1..=32).contains(&bits), "bits must be in 1..=32");
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    let scale = (1u64 << bits) as f64;
    ((p * scale).round() as u64).min(1u64 << bits)
}

/// Expands one shared threshold into MSB-first bit-planes (every lane
/// carries the same probability) for [`bernoulli_words`].
///
/// # Panics
///
/// Panics if `threshold >= 2^bits` (use dedicated handling for
/// certainty) or `bits` is not in `1..=32`.
#[must_use]
pub fn uniform_planes(threshold: u64, bits: u32) -> Vec<u64> {
    assert!((1..=32).contains(&bits), "bits must be in 1..=32");
    assert!(
        threshold < (1u64 << bits),
        "threshold {threshold} needs more than {bits} planes"
    );
    (0..bits)
        .map(|j| {
            if (threshold >> (bits - 1 - j)) & 1 == 1 {
                !0u64
            } else {
                0u64
            }
        })
        .collect()
}

/// Enforces the stream-order contract of
/// [`crate::rng::BitSource::fill_words`] on a packed buffer: bits at
/// positions `len..` are cleared (the partial tail word masked, all
/// later words zeroed). Word-parallel `fill_words` implementations draw
/// whole words and finish with this.
pub fn clear_past_len(words: &mut [u64], len: usize) {
    if !len.is_multiple_of(64) {
        if let Some(tail) = words.get_mut(len / 64) {
            *tail &= (1u64 << (len % 64)) - 1;
        }
    }
    for word in words.iter_mut().skip(len.div_ceil(64)) {
        *word = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    #[test]
    fn half_threshold_is_exactly_the_msb() {
        // t = 2^(k-1): only the MSB plane is set, so the draw reduces to
        // "first random bit is 0" — probability exactly 1/2 and exactly
        // one word consumed.
        let planes = uniform_planes(1 << 15, 16);
        let mut draws = 0;
        let out = bernoulli_words(&planes, || {
            draws += 1;
            0xAAAA_AAAA_AAAA_AAAA
        });
        assert_eq!(out, 0x5555_5555_5555_5555);
        assert_eq!(draws, 1);
    }

    #[test]
    fn probabilities_match_thresholds() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        for &t in &[1u64, 100, 13_107, 32_768, 52_429, 65_535] {
            let planes = uniform_planes(t, 16);
            let mut ones = 0u64;
            let words = 40_000;
            for _ in 0..words {
                ones += bernoulli_words(&planes, || rng.next_u64()).count_ones() as u64;
            }
            let got = ones as f64 / (words * 64) as f64;
            let want = t as f64 / 65_536.0;
            assert!((got - want).abs() < 4e-3, "t={t}: {got} vs {want}");
        }
    }

    #[test]
    fn per_lane_thresholds_are_independent() {
        // Lane 0 near-certain, lane 1 near-impossible, via hand-built
        // planes: t0 = 0xFFFF, t1 = 0x0001.
        let mut planes = vec![0u64; 16];
        for p in planes.iter_mut().take(15) {
            *p = 0b01; // lane 0 only
        }
        planes[15] = 0b11; // LSB set for both lanes
        let mut rng = Xoshiro256::seed_from_u64(5);
        let (mut ones0, mut ones1) = (0u64, 0u64);
        for _ in 0..20_000 {
            let w = bernoulli_words(&planes, || rng.next_u64());
            ones0 += w & 1;
            ones1 += (w >> 1) & 1;
        }
        assert!(ones0 > 19_500, "lane0 {ones0}");
        assert!(ones1 < 500, "lane1 {ones1}");
    }

    #[test]
    fn zero_threshold_never_fires() {
        let planes = uniform_planes(0, 8);
        let mut rng = Xoshiro256::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(bernoulli_words(&planes, || rng.next_u64()), 0);
        }
    }

    #[test]
    fn threshold_quantization() {
        assert_eq!(probability_threshold(0.5, 16), 1 << 15);
        assert_eq!(probability_threshold(0.0, 16), 0);
        assert_eq!(probability_threshold(1.0, 16), 1 << 16);
        assert_eq!(probability_threshold(0.25, 2), 1);
    }

    #[test]
    #[should_panic(expected = "needs more than")]
    fn certainty_threshold_rejected_by_planes() {
        let _ = uniform_planes(1 << 16, 16);
    }
}
