//! Maximal-length linear-feedback shift registers (the CMOS PRNG baseline).
//!
//! The paper's Table I footnote specifies the 8-bit maximal LFSR with
//! feedback polynomial `x⁸ + x⁵ + x³ + x + 1` (tap set `[8, 5, 3, 1]`,
//! period 255). [`Lfsr::maximal`] uses that polynomial for width 8 and
//! known maximal tap sets for other widths.

use super::RandomSource;
use crate::error::ScError;

/// Known maximal-length Fibonacci tap sets per register width.
///
/// Width 8 uses the paper's polynomial; the others follow the classic
/// Xilinx XAPP052 table. Taps are 1-indexed bit positions whose XOR forms
/// the feedback bit.
const MAXIMAL_TAPS: &[(u32, &[u32])] = &[
    (2, &[2, 1]),
    (3, &[3, 2]),
    (4, &[4, 3]),
    (5, &[5, 3]),
    (6, &[6, 5]),
    (7, &[7, 6]),
    (8, &[8, 5, 3, 1]), // paper polynomial x^8 + x^5 + x^3 + x + 1
    (9, &[9, 5]),
    (10, &[10, 7]),
    (11, &[11, 9]),
    (12, &[12, 6, 4, 1]),
    (13, &[13, 4, 3, 1]),
    (14, &[14, 5, 3, 1]),
    (15, &[15, 14]),
    (16, &[16, 15, 13, 4]),
    (17, &[17, 14]),
    (18, &[18, 11]),
    (19, &[19, 6, 2, 1]),
    (20, &[20, 17]),
    (24, &[24, 23, 22, 17]),
    (32, &[32, 22, 2, 1]),
];

/// A Fibonacci linear-feedback shift register.
///
/// Each step shifts the register left by one and inserts the XOR of the tap
/// bits; the full register state is the emitted random number, the common
/// arrangement in CMOS stochastic number generators.
///
/// # Example
///
/// ```
/// use sc_core::rng::{Lfsr, RandomSource};
///
/// # fn main() -> Result<(), sc_core::ScError> {
/// let mut lfsr = Lfsr::maximal(8, 0x1)?;
/// let v = lfsr.next_value();
/// assert!(v < 256 && v != 0); // the zero state is unreachable
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Lfsr {
    state: u64,
    width: u32,
    tap_mask: u64,
}

impl Lfsr {
    /// Creates a maximal-length LFSR of the given width.
    ///
    /// # Errors
    ///
    /// * [`ScError::UnsupportedLfsrWidth`] — no tap-set table entry for
    ///   `width`.
    /// * [`ScError::ZeroLfsrSeed`] — `seed` reduces to the locked-up
    ///   all-zero state.
    pub fn maximal(width: u32, seed: u64) -> Result<Self, ScError> {
        let taps = MAXIMAL_TAPS
            .iter()
            .find(|(w, _)| *w == width)
            .map(|(_, t)| *t)
            .ok_or(ScError::UnsupportedLfsrWidth(width))?;
        Lfsr::with_taps(width, taps, seed)
    }

    /// Creates an LFSR with explicit 1-indexed tap positions.
    ///
    /// # Errors
    ///
    /// * [`ScError::InvalidBitWidth`] — `width` not in `2..=63` or a tap
    ///   exceeds the width.
    /// * [`ScError::ZeroLfsrSeed`] — `seed` reduces to the all-zero state.
    pub fn with_taps(width: u32, taps: &[u32], seed: u64) -> Result<Self, ScError> {
        if !(2..=63).contains(&width) || taps.is_empty() {
            return Err(ScError::InvalidBitWidth(width));
        }
        let mut tap_mask = 0u64;
        for &t in taps {
            if t == 0 || t > width {
                return Err(ScError::InvalidBitWidth(t));
            }
            tap_mask |= 1u64 << (t - 1);
        }
        let state = seed & ((1u64 << width) - 1);
        if state == 0 {
            return Err(ScError::ZeroLfsrSeed);
        }
        Ok(Lfsr {
            state,
            width,
            tap_mask,
        })
    }

    /// The register width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The current register state (the last emitted value).
    #[must_use]
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Advances the register one step and returns the new state.
    pub fn step(&mut self) -> u64 {
        let fb = (self.state & self.tap_mask).count_ones() & 1;
        self.state = ((self.state << 1) | u64::from(fb)) & ((1u64 << self.width) - 1);
        self.state
    }

    /// Computes the period of this LFSR (≤ 2^width − 1).
    ///
    /// Intended for tests and validation of custom tap sets.
    #[must_use]
    pub fn period(&self) -> u64 {
        let mut probe = self.clone();
        let start = probe.state;
        let mut n = 0u64;
        loop {
            probe.step();
            n += 1;
            if probe.state == start || n > (1u64 << self.width) {
                return n;
            }
        }
    }
}

impl RandomSource for Lfsr {
    fn bits(&self) -> u32 {
        self.width
    }

    fn next_value(&mut self) -> u64 {
        self.step()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_polynomial_is_maximal() {
        let lfsr = Lfsr::maximal(8, 1).unwrap();
        assert_eq!(lfsr.period(), 255);
    }

    #[test]
    fn all_table_entries_are_maximal() {
        for (w, taps) in MAXIMAL_TAPS.iter().filter(|(w, _)| *w <= 16) {
            let lfsr = Lfsr::with_taps(*w, taps, 1).unwrap();
            assert_eq!(lfsr.period(), (1u64 << w) - 1, "width {w}");
        }
    }

    #[test]
    fn zero_seed_is_rejected() {
        assert_eq!(Lfsr::maximal(8, 0), Err(ScError::ZeroLfsrSeed));
        assert_eq!(Lfsr::maximal(8, 256), Err(ScError::ZeroLfsrSeed)); // masks to 0
    }

    #[test]
    fn unsupported_width_is_reported() {
        assert_eq!(Lfsr::maximal(63, 1), Err(ScError::UnsupportedLfsrWidth(63)));
    }

    #[test]
    fn never_emits_zero() {
        let mut lfsr = Lfsr::maximal(8, 0xAB).unwrap();
        for _ in 0..512 {
            assert_ne!(lfsr.next_value(), 0);
        }
    }

    #[test]
    fn visits_every_nonzero_state_once_per_period() {
        let mut lfsr = Lfsr::maximal(8, 0x3C).unwrap();
        let mut seen = [false; 256];
        for _ in 0..255 {
            let v = lfsr.next_value() as usize;
            assert!(!seen[v], "state {v} repeated within one period");
            seen[v] = true;
        }
        assert!(!seen[0]);
        assert_eq!(seen.iter().filter(|&&s| s).count(), 255);
    }

    #[test]
    fn invalid_taps_rejected() {
        assert!(Lfsr::with_taps(8, &[9], 1).is_err());
        assert!(Lfsr::with_taps(8, &[0], 1).is_err());
        assert!(Lfsr::with_taps(8, &[], 1).is_err());
    }
}
