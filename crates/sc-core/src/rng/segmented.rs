//! Segmenting a true-random bit stream into M-bit random numbers.
//!
//! The paper's IMSNG (§III-A, Fig. 2) decouples random-number generation
//! from bit-stream generation: an in-ReRAM TRNG fills rows with nominally
//! 50%-ones random bits, and consecutive `M`-bit *segments* of those rows
//! are interpreted as the `N` random numbers a comparator-based SNG needs.
//! [`SegmentedSource`] implements that packing over any [`BitSource`];
//! the device-accurate bit source lives in the `reram` crate, while
//! [`BiasedBitSource`] provides a software model of a TRNG with per-source
//! probability bias (device-level fluctuation around 50%).

use super::bitslice::{bernoulli_words, clear_past_len, probability_threshold, uniform_planes};
use super::xoshiro::Xoshiro256;
use super::{BitSource, RandomSource};
use crate::error::ScError;

/// Threshold precision of the word-parallel sampling path: probabilities
/// quantize to `1/2^16` (an ideal 0.5 source is represented exactly).
const THRESHOLD_BITS: u32 = 16;

/// Packs `M` consecutive bits from a [`BitSource`] into each emitted
/// `M`-bit random number (MSB first, matching the paper's segment layout).
///
/// # Example
///
/// ```
/// use sc_core::rng::{BiasedBitSource, RandomSource, SegmentedSource};
///
/// # fn main() -> Result<(), sc_core::ScError> {
/// let trng = BiasedBitSource::unbiased(33);
/// let mut src = SegmentedSource::new(trng, 8)?;
/// assert_eq!(src.bits(), 8);
/// assert!(src.next_value() < 256);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SegmentedSource<B> {
    source: B,
    segment_bits: u32,
}

impl<B: BitSource> SegmentedSource<B> {
    /// Creates a segmented source emitting `segment_bits`-bit numbers
    /// (the paper sweeps `M = 5..=9`).
    ///
    /// # Errors
    ///
    /// Returns [`ScError::ZeroSegmentSize`] when `segment_bits == 0` and
    /// [`ScError::InvalidBitWidth`] when `segment_bits > 63`.
    pub fn new(source: B, segment_bits: u32) -> Result<Self, ScError> {
        if segment_bits == 0 {
            return Err(ScError::ZeroSegmentSize);
        }
        if segment_bits > 63 {
            return Err(ScError::InvalidBitWidth(segment_bits));
        }
        Ok(SegmentedSource {
            source,
            segment_bits,
        })
    }

    /// Consumes the adapter and returns the underlying bit source.
    pub fn into_inner(self) -> B {
        self.source
    }
}

impl<B: BitSource> RandomSource for SegmentedSource<B> {
    fn bits(&self) -> u32 {
        self.segment_bits
    }

    fn next_value(&mut self) -> u64 {
        let mut v = 0u64;
        for _ in 0..self.segment_bits {
            v = (v << 1) | u64::from(self.source.next_bit());
        }
        v
    }
}

/// A software model of a true-random bit source with a fixed probability
/// bias: emits `1` with probability `0.5 + bias`.
///
/// Real ReRAM TRNG cells fluctuate around the 50% point; the `reram` crate
/// derives per-cell biases from the device model, while this type provides
/// a cheap, deterministic stand-in for algorithm-level experiments.
#[derive(Debug, Clone)]
pub struct BiasedBitSource {
    rng: Xoshiro256,
    p_one: f64,
}

impl BiasedBitSource {
    /// Creates an unbiased (p = 0.5) bit source.
    #[must_use]
    pub fn unbiased(seed: u64) -> Self {
        BiasedBitSource {
            rng: Xoshiro256::seed_from_u64(seed),
            p_one: 0.5,
        }
    }

    /// Creates a bit source emitting ones with probability `0.5 + bias`.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidProbability`] if `0.5 + bias` leaves
    /// `[0, 1]`.
    pub fn with_bias(seed: u64, bias: f64) -> Result<Self, ScError> {
        let p = 0.5 + bias;
        if p.is_nan() || !(0.0..=1.0).contains(&p) {
            return Err(ScError::InvalidProbability(p));
        }
        Ok(BiasedBitSource {
            rng: Xoshiro256::seed_from_u64(seed),
            p_one: p,
        })
    }

    /// The probability of emitting a one.
    #[must_use]
    pub fn p_one(&self) -> f64 {
        self.p_one
    }
}

impl BitSource for BiasedBitSource {
    fn next_bit(&mut self) -> bool {
        self.rng.next_f64() < self.p_one
    }

    /// Word-parallel fill via bit-sliced binary-expansion sampling: the
    /// per-bit probability is `round(p·2^16)/2^16` (exact for `p = 0.5`),
    /// statistically equivalent to the per-bit path up to that
    /// quantization.
    fn fill_words(&mut self, words: &mut [u64], len: usize) {
        assert!(
            len <= words.len() * 64,
            "{len} bits do not fit in {} words",
            words.len()
        );
        let t = probability_threshold(self.p_one, THRESHOLD_BITS);
        if t >= 1 << THRESHOLD_BITS {
            // Certainty is not representable as a threshold; fill directly.
            words.fill(!0);
        } else {
            let planes = uniform_planes(t, THRESHOLD_BITS);
            // Only the words that carry requested bits consume entropy.
            for w in words.iter_mut().take(len.div_ceil(64)) {
                *w = bernoulli_words(&planes, || self.rng.next_u64());
            }
        }
        clear_past_len(words, len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_pack_msb_first() {
        struct Fixed(Vec<bool>, usize);
        impl BitSource for Fixed {
            fn next_bit(&mut self) -> bool {
                let b = self.0[self.1 % self.0.len()];
                self.1 += 1;
                b
            }
        }
        let src = Fixed(vec![true, false, true, true], 0);
        let mut seg = SegmentedSource::new(src, 4).unwrap();
        assert_eq!(seg.next_value(), 0b1011);
    }

    #[test]
    fn zero_segment_rejected() {
        let trng = BiasedBitSource::unbiased(1);
        assert!(matches!(
            SegmentedSource::new(trng, 0),
            Err(ScError::ZeroSegmentSize)
        ));
    }

    #[test]
    fn unbiased_source_is_roughly_half_ones() {
        let mut src = BiasedBitSource::unbiased(42);
        let ones = (0..100_000).filter(|_| src.next_bit()).count();
        assert!((45_000..55_000).contains(&ones), "ones {ones}");
    }

    #[test]
    fn bias_shifts_the_mean() {
        let mut src = BiasedBitSource::with_bias(42, 0.1).unwrap();
        let ones = (0..100_000).filter(|_| src.next_bit()).count();
        assert!((58_000..62_000).contains(&ones), "ones {ones}");
    }

    #[test]
    fn invalid_bias_rejected() {
        assert!(BiasedBitSource::with_bias(1, 0.6).is_err());
        assert!(BiasedBitSource::with_bias(1, -0.6).is_err());
    }

    #[test]
    fn fill_words_matches_per_bit_statistics() {
        // The word path quantizes p to 16 bits; its per-bit frequency must
        // match the per-bit path's within sampling noise.
        for bias in [-0.3, 0.0, 0.2] {
            let mut word_src = BiasedBitSource::with_bias(9, bias).unwrap();
            let mut bit_src = BiasedBitSource::with_bias(10, bias).unwrap();
            let len = 64 * 2_000;
            let mut words = vec![0u64; len / 64];
            word_src.fill_words(&mut words, len);
            let word_ones: u64 = words.iter().map(|w| u64::from(w.count_ones())).sum();
            let bit_ones = (0..len).filter(|_| bit_src.next_bit()).count() as u64;
            let diff = (word_ones as f64 - bit_ones as f64).abs() / len as f64;
            assert!(diff < 0.01, "bias {bias}: diff {diff}");
        }
    }

    #[test]
    fn fill_words_clears_past_len() {
        let mut src = BiasedBitSource::with_bias(3, 0.5).unwrap(); // p = 1
        let mut words = vec![0u64; 3];
        src.fill_words(&mut words, 70);
        assert_eq!(words[0], !0);
        assert_eq!(words[1], 0b11_1111);
        assert_eq!(words[2], 0);
    }

    #[test]
    fn segmented_values_are_roughly_uniform() {
        let trng = BiasedBitSource::unbiased(7);
        let mut seg = SegmentedSource::new(trng, 3).unwrap();
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[seg.next_value() as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "count {c}");
        }
    }
}
