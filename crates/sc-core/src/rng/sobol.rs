//! Sobol low-discrepancy sequences (the QRNG baseline).
//!
//! Quasi-random number generators trade true randomness for uniform
//! coverage of the unit interval, which makes stochastic-number-generation
//! error fall roughly as `O(1/N²)` instead of `O(1/N)` — the behaviour of
//! the QRNG rows in the paper's Tables I–II.

use super::RandomSource;
use crate::error::ScError;

/// Direction-number parameters for the first Sobol dimensions
/// (`(s, a, m)` triplets from the Joe–Kuo "new-joe-kuo-6" table; dimension
/// 0 is the van der Corput sequence in base 2 and has no entry).
const JOE_KUO: &[(u32, u32, &[u32])] = &[
    (1, 0, &[1]),
    (2, 1, &[1, 3]),
    (3, 1, &[1, 3, 1]),
    (3, 2, &[1, 1, 1]),
    (4, 1, &[1, 1, 3, 3]),
    (4, 4, &[1, 3, 5, 13]),
    (5, 2, &[1, 1, 5, 5, 17]),
    (5, 4, &[1, 1, 5, 5, 5]),
    (5, 7, &[1, 1, 7, 11, 19]),
    (5, 11, &[1, 7, 5, 1, 1]),
    (5, 13, &[1, 1, 1, 3, 11]),
    (5, 14, &[1, 3, 5, 5, 31]),
    (6, 1, &[1, 3, 3, 9, 7, 49]),
    (6, 13, &[1, 1, 1, 15, 21, 21]),
    (6, 16, &[1, 3, 1, 13, 27, 49]),
];

const SOBOL_BITS: u32 = 32;

/// A one-dimensional slice of the Sobol sequence, emitting `bits`-bit
/// integers.
///
/// Different `dimension` values give mutually low-correlation sequences —
/// the QRNG analogue of using independent RNGs for uncorrelated bit-streams.
///
/// # Example
///
/// ```
/// use sc_core::rng::{RandomSource, Sobol};
///
/// # fn main() -> Result<(), sc_core::ScError> {
/// let mut q = Sobol::new(0, 8)?;
/// // Dimension 0 in Gray-code order: 0, 128, 192, 64, ...
/// assert_eq!(q.next_value(), 0);
/// assert_eq!(q.next_value(), 128);
/// assert_eq!(q.next_value(), 192);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Sobol {
    v: Vec<u32>,
    x: u32,
    index: u64,
    bits: u32,
}

impl Sobol {
    /// Creates the Sobol sequence for `dimension`, quantized to `bits`-bit
    /// outputs.
    ///
    /// # Errors
    ///
    /// * [`ScError::UnsupportedSobolDimension`] — `dimension` exceeds the
    ///   built-in Joe–Kuo table (15 dimensions beyond dimension 0).
    /// * [`ScError::InvalidBitWidth`] — `bits` not in `1..=32`.
    pub fn new(dimension: usize, bits: u32) -> Result<Self, ScError> {
        if bits == 0 || bits > SOBOL_BITS {
            return Err(ScError::InvalidBitWidth(bits));
        }
        let mut v = vec![0u32; SOBOL_BITS as usize];
        if dimension == 0 {
            for (k, slot) in v.iter_mut().enumerate() {
                *slot = 1u32 << (SOBOL_BITS - 1 - k as u32);
            }
        } else {
            let (s, a, m) = *JOE_KUO
                .get(dimension - 1)
                .ok_or(ScError::UnsupportedSobolDimension(dimension))?;
            let s = s as usize;
            for k in 0..SOBOL_BITS as usize {
                if k < s {
                    v[k] = m[k] << (SOBOL_BITS - 1 - k as u32);
                } else {
                    let mut val = v[k - s] ^ (v[k - s] >> s);
                    for j in 1..s {
                        if (a >> (s - 1 - j)) & 1 == 1 {
                            val ^= v[k - j];
                        }
                    }
                    v[k] = val;
                }
            }
        }
        Ok(Sobol {
            v,
            x: 0,
            index: 0,
            bits,
        })
    }

    /// The number of dimensions supported by the built-in table.
    #[must_use]
    pub fn max_dimensions() -> usize {
        JOE_KUO.len() + 1
    }

    /// The zero-based index of the next point to be emitted.
    #[must_use]
    pub fn index(&self) -> u64 {
        self.index
    }

    /// Resets the sequence to its first point.
    pub fn reset(&mut self) {
        self.x = 0;
        self.index = 0;
    }
}

impl RandomSource for Sobol {
    fn bits(&self) -> u32 {
        self.bits
    }

    fn next_value(&mut self) -> u64 {
        // Gray-code order: point n is x_{n-1} ^ v[ctz(n)].
        let out = u64::from(self.x >> (SOBOL_BITS - self.bits));
        let c = self.index.trailing_ones() as usize;
        self.x ^= self.v[c.min(SOBOL_BITS as usize - 1)];
        self.index += 1;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimension_zero_is_gray_coded_van_der_corput() {
        let mut q = Sobol::new(0, 8).unwrap();
        let vals: Vec<u64> = (0..8).map(|_| q.next_value()).collect();
        // Gray-code traversal of the van der Corput points.
        assert_eq!(vals, vec![0, 128, 192, 64, 96, 224, 160, 32]);
    }

    #[test]
    fn first_n_points_are_balanced() {
        // Any 2^k-point prefix of a Sobol dimension hits every length-2^k
        // dyadic interval exactly once.
        for dim in 0..Sobol::max_dimensions() {
            let mut q = Sobol::new(dim, 8).unwrap();
            let mut seen = [false; 256];
            for _ in 0..256 {
                let v = q.next_value() as usize;
                assert!(!seen[v], "dim {dim}: value {v} repeated in first 256");
                seen[v] = true;
            }
        }
    }

    #[test]
    fn dimensions_are_distinct() {
        let mut a = Sobol::new(1, 16).unwrap();
        let mut b = Sobol::new(2, 16).unwrap();
        let va: Vec<u64> = (0..16).map(|_| a.next_value()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_value()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn reset_restarts_sequence() {
        let mut q = Sobol::new(3, 8).unwrap();
        let first: Vec<u64> = (0..10).map(|_| q.next_value()).collect();
        q.reset();
        let again: Vec<u64> = (0..10).map(|_| q.next_value()).collect();
        assert_eq!(first, again);
    }

    #[test]
    fn out_of_table_dimension_rejected() {
        assert!(matches!(
            Sobol::new(999, 8),
            Err(ScError::UnsupportedSobolDimension(999))
        ));
    }

    #[test]
    fn invalid_bits_rejected() {
        assert!(Sobol::new(0, 0).is_err());
        assert!(Sobol::new(0, 33).is_err());
    }

    #[test]
    fn estimation_error_beats_random_sampling() {
        // Quasi-random estimate of p = 0.3 with N = 256 should be within
        // 1/N of the target — far tighter than the ~sqrt(p(1-p)/N) of a
        // true-random source.
        let mut q = Sobol::new(0, 16).unwrap();
        let threshold = (0.3 * f64::from(1u32 << 16)) as u64;
        let n = 256;
        let ones = (0..n).filter(|_| q.next_value() < threshold).count();
        let p_hat = ones as f64 / n as f64;
        assert!(
            (p_hat - 0.3).abs() <= 1.0 / n as f64 + 1e-9,
            "p_hat {p_hat}"
        );
    }
}
