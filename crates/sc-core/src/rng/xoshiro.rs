//! Xoshiro256++: the workspace's general-purpose software PRNG.

use super::splitmix::SplitMix64;
use super::RandomSource;

/// The xoshiro256++ generator (Blackman & Vigna, 2019).
///
/// Stands in for "Software — MATLAB `rand`" in the paper's Tables I–II:
/// a statistically strong, full-width uniform source against which the
/// hardware RNGs are compared.
///
/// # Example
///
/// ```
/// use sc_core::rng::Xoshiro256;
///
/// let mut g = Xoshiro256::seed_from_u64(2024);
/// let x = g.next_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the generator by expanding a 64-bit seed through SplitMix64
    /// (the procedure recommended by the xoshiro authors).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)` via Lemire reduction.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Widening-multiply rejection-free approximation is fine here; use
        // rejection sampling for exactness.
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let m = u128::from(x) * u128::from(bound);
                ((m >> 64) as u64, m as u64)
            };
            if lo >= bound || lo >= x.wrapping_neg() % bound {
                return hi;
            }
        }
    }

    /// Adapts this generator into a fixed-width [`RandomSource`].
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `1..=63`.
    #[must_use]
    pub fn into_source(self, bits: u32) -> XoshiroSource {
        assert!((1..=63).contains(&bits), "bits must be in 1..=63");
        XoshiroSource { inner: self, bits }
    }
}

/// A fixed-width [`RandomSource`] view over [`Xoshiro256`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct XoshiroSource {
    inner: Xoshiro256,
    bits: u32,
}

impl RandomSource for XoshiroSource {
    fn bits(&self) -> u32 {
        self.bits
    }

    fn next_value(&mut self) -> u64 {
        self.inner.next_u64() >> (64 - self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Xoshiro256::seed_from_u64(11);
        let mut b = Xoshiro256::seed_from_u64(11);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut g = Xoshiro256::seed_from_u64(5);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[g.next_below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((9000..11000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut g = Xoshiro256::seed_from_u64(8);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| g.next_f64()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
