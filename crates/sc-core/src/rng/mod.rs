//! Random-number sources for stochastic number generation.
//!
//! The paper compares four source families (Tables I–II):
//!
//! * **PRNG** — maximal-length linear-feedback shift registers ([`Lfsr`]),
//!   the conventional CMOS choice.
//! * **QRNG** — Sobol low-discrepancy sequences ([`Sobol`]).
//! * **Software** — a full-width uniform generator ([`UniformSource`],
//!   backed by [`Xoshiro256`]), standing in for MATLAB's `rand`.
//! * **TRNG** — true-random *bit* sources ([`BitSource`]) chopped into
//!   `M`-bit numbers by [`SegmentedSource`]; the in-memory IMSNG path feeds
//!   this from ReRAM read-noise rows (see the `reram` crate).

mod bitslice;
mod lfsr;
mod segmented;
mod sobol;
mod splitmix;
mod uniform;
mod xoshiro;

pub use bitslice::{bernoulli_words, clear_past_len, probability_threshold, uniform_planes};
pub use lfsr::Lfsr;
pub use segmented::{BiasedBitSource, SegmentedSource};
pub use sobol::Sobol;
pub use splitmix::SplitMix64;
pub use uniform::UniformSource;
pub use xoshiro::Xoshiro256;

/// A source of uniformly distributed `bits()`-bit random integers.
///
/// Implementors yield values in `[0, 2^bits)`. Stochastic number generators
/// compare these against a binary operand to produce bit-streams.
pub trait RandomSource {
    /// Output width in bits (1..=63).
    fn bits(&self) -> u32;

    /// Returns the next value, uniform (or low-discrepancy) in
    /// `[0, 2^bits)`.
    fn next_value(&mut self) -> u64;
}

impl<T: RandomSource + ?Sized> RandomSource for &mut T {
    fn bits(&self) -> u32 {
        (**self).bits()
    }
    fn next_value(&mut self) -> u64 {
        (**self).next_value()
    }
}

impl<T: RandomSource + ?Sized> RandomSource for Box<T> {
    fn bits(&self) -> u32 {
        (**self).bits()
    }
    fn next_value(&mut self) -> u64 {
        (**self).next_value()
    }
}

/// A source of individual random bits (nominally 50% ones).
///
/// This is the abstraction of the in-ReRAM TRNG: a row of cells whose read
/// noise yields one (possibly slightly biased) random bit per cell.
pub trait BitSource {
    /// Returns the next random bit.
    fn next_bit(&mut self) -> bool;

    /// Fills `out` with random bits (default: one call per bit).
    fn fill_bits(&mut self, out: &mut [bool]) {
        for b in out {
            *b = self.next_bit();
        }
    }

    /// Fills packed words with `len` random bits in *stream order*: bit
    /// `i` of the stream is bit `i % 64` of `words[i / 64]`, matching
    /// [`crate::BitStream`]'s layout. Bits at positions `len..` are
    /// cleared.
    ///
    /// The default draws one bit at a time; word-parallel sources (the
    /// ReRAM TRNG, [`BiasedBitSource`]) override this with a bit-sliced
    /// fast path that is statistically equivalent.
    ///
    /// # Panics
    ///
    /// Panics if `words` cannot hold `len` bits.
    fn fill_words(&mut self, words: &mut [u64], len: usize) {
        assert!(
            len <= words.len() * 64,
            "{len} bits do not fit in {} words",
            words.len()
        );
        words.fill(0);
        for i in 0..len {
            if self.next_bit() {
                words[i / 64] |= 1 << (i % 64);
            }
        }
    }
}

impl<T: BitSource + ?Sized> BitSource for &mut T {
    fn next_bit(&mut self) -> bool {
        (**self).next_bit()
    }
    fn fill_bits(&mut self, out: &mut [bool]) {
        (**self).fill_bits(out);
    }
    fn fill_words(&mut self, words: &mut [u64], len: usize) {
        (**self).fill_words(words, len);
    }
}

impl<T: BitSource + ?Sized> BitSource for Box<T> {
    fn next_bit(&mut self) -> bool {
        (**self).next_bit()
    }
    fn fill_bits(&mut self, out: &mut [bool]) {
        (**self).fill_bits(out);
    }
    fn fill_words(&mut self, words: &mut [u64], len: usize) {
        (**self).fill_words(words, len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_source_is_object_safe() {
        let mut src: Box<dyn RandomSource> = Box::new(SplitMix64::new(1).into_source(8));
        assert_eq!(src.bits(), 8);
        let v = src.next_value();
        assert!(v < 256);
    }

    #[test]
    fn bit_source_is_object_safe() {
        let mut src: Box<dyn BitSource> = Box::new(BiasedBitSource::unbiased(7));
        let _ = src.next_bit();
    }

    #[test]
    fn mut_ref_forwards() {
        let mut lfsr = Lfsr::maximal(8, 1).unwrap();
        let r = &mut lfsr;
        fn takes_source<R: RandomSource>(mut r: R) -> u64 {
            r.next_value()
        }
        let v = takes_source(r);
        assert!(v < 256);
    }
}
