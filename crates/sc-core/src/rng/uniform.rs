//! Full-precision software uniform source ("Software — MATLAB rand").

use super::xoshiro::Xoshiro256;
use super::RandomSource;

/// Width (bits) used by [`UniformSource`]; wide enough that quantization is
/// negligible next to sampling error for any practical bit-stream length.
pub const UNIFORM_BITS: u32 = 48;

/// A software uniform random source with effectively continuous resolution.
///
/// This is the paper's "Software — MATLAB" reference row: stochastic number
/// generation limited only by binomial sampling noise (MSE ≈ 1/(6N) over
/// uniform targets), with no comparator quantization.
///
/// # Example
///
/// ```
/// use sc_core::rng::{RandomSource, UniformSource};
///
/// let mut sw = UniformSource::seed_from_u64(7);
/// assert_eq!(sw.bits(), 48);
/// let v = sw.next_value();
/// assert!(v < 1u64 << 48);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct UniformSource {
    rng: Xoshiro256,
}

impl UniformSource {
    /// Creates a source from a 64-bit seed.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        UniformSource {
            rng: Xoshiro256::seed_from_u64(seed),
        }
    }
}

impl RandomSource for UniformSource {
    fn bits(&self) -> u32 {
        UNIFORM_BITS
    }

    fn next_value(&mut self) -> u64 {
        self.rng.next_u64() >> (64 - UNIFORM_BITS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_in_range() {
        let mut s = UniformSource::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(s.next_value() < (1u64 << UNIFORM_BITS));
        }
    }

    #[test]
    fn deterministic() {
        let mut a = UniformSource::seed_from_u64(9);
        let mut b = UniformSource::seed_from_u64(9);
        for _ in 0..16 {
            assert_eq!(a.next_value(), b.next_value());
        }
    }
}
