//! Packed stochastic bit-streams.
//!
//! A [`BitStream`] stores `N` bits in `⌈N/64⌉` machine words. In stochastic
//! computing every bit carries equal weight — there is no significance
//! ordering — so all arithmetic reduces to bulk bitwise operations, which is
//! exactly what the in-ReRAM scouting-logic substrate executes row-parallel.

use crate::error::ScError;
use crate::prob::Prob;
use std::fmt;

/// A fixed-length stochastic bit-stream.
///
/// The encoded value is `popcount / len` (the probability of a `1`).
///
/// # Example
///
/// ```
/// use sc_core::BitStream;
///
/// let s = BitStream::from_bools([true, false, true, false, true]);
/// assert_eq!(s.len(), 5);
/// assert_eq!(s.count_ones(), 3);
/// assert_eq!(s.value(), 0.6);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitStream {
    words: Vec<u64>,
    len: usize,
}

impl BitStream {
    /// Creates an all-zero stream of `len` bits.
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        BitStream {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates an all-one stream of `len` bits.
    #[must_use]
    pub fn ones(len: usize) -> Self {
        let mut s = BitStream {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        s.mask_tail();
        s
    }

    /// Builds a stream from an iterator of booleans, reserving the word
    /// vector up front from the iterator's size hint.
    #[must_use]
    pub fn from_bools<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let iter = bits.into_iter();
        let (lower, _) = iter.size_hint();
        let mut s = BitStream {
            words: Vec::with_capacity(lower.div_ceil(64)),
            len: 0,
        };
        s.extend(iter);
        s
    }

    /// Builds a stream of `len` bits by calling `f(i)` for each position,
    /// assembling whole 64-bit words instead of setting bits one by one.
    #[must_use]
    pub fn from_fn<F: FnMut(usize) -> bool>(len: usize, mut f: F) -> Self {
        let mut words = Vec::with_capacity(len.div_ceil(64));
        let mut i = 0;
        while i < len {
            let n = (len - i).min(64);
            let mut w = 0u64;
            for b in 0..n {
                if f(i + b) {
                    w |= 1u64 << b;
                }
            }
            words.push(w);
            i += n;
        }
        BitStream { words, len }
    }

    /// Builds a stream directly from packed words.
    ///
    /// Bits beyond `len` in the last word are cleared.
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != len.div_ceil(64)`.
    #[must_use]
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        assert_eq!(
            words.len(),
            len.div_ceil(64),
            "word count must match bit length"
        );
        let mut s = BitStream {
            words: std::mem::take(&mut words),
            len,
        };
        s.mask_tail();
        s
    }

    /// Number of bits in the stream.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the stream holds zero bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packed backing words (tail bits beyond `len` are zero).
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Appends one bit to the stream.
    pub fn push(&mut self, bit: bool) {
        let i = self.len;
        self.len += 1;
        if self.words.len() * 64 < self.len {
            self.words.push(0);
        }
        if bit {
            self.words[i / 64] |= 1u64 << (i % 64);
        }
    }

    /// Returns bit `i`, or `None` when out of range.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<bool> {
        if i >= self.len {
            None
        } else {
            Some((self.words[i / 64] >> (i % 64)) & 1 == 1)
        }
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, bit: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        let mask = 1u64 << (i % 64);
        if bit {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Flips bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn flip(&mut self, i: usize) {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        self.words[i / 64] ^= 1u64 << (i % 64);
    }

    /// Population count: number of `1` bits.
    #[must_use]
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// The encoded value `popcount / len` in `[0, 1]`.
    ///
    /// Returns `0.0` for an empty stream.
    #[must_use]
    pub fn value(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// The encoded value as a validated [`Prob`].
    #[must_use]
    pub fn prob(&self) -> Prob {
        Prob::saturating(self.value())
    }

    /// Iterates over the bits.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            stream: self,
            pos: 0,
        }
    }

    /// Bitwise AND — SC multiplication of uncorrelated streams, SC minimum
    /// of correlated streams.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::LengthMismatch`] if lengths differ.
    pub fn and(&self, other: &BitStream) -> Result<BitStream, ScError> {
        self.zip_words(other, |a, b| a & b)
    }

    /// Bitwise OR — SC approximate addition (inputs in `[0, 0.5]`), SC
    /// maximum of correlated streams.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::LengthMismatch`] if lengths differ.
    pub fn or(&self, other: &BitStream) -> Result<BitStream, ScError> {
        self.zip_words(other, |a, b| a | b)
    }

    /// Bitwise XOR — SC absolute subtraction of correlated streams.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::LengthMismatch`] if lengths differ.
    pub fn xor(&self, other: &BitStream) -> Result<BitStream, ScError> {
        self.zip_words(other, |a, b| a ^ b)
    }

    /// In-place bitwise AND (`self &= other`), avoiding an allocation on
    /// hot paths such as the IMSNG latch updates.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::LengthMismatch`] if lengths differ.
    pub fn and_assign(&mut self, other: &BitStream) -> Result<(), ScError> {
        self.zip_assign(other, |a, b| a & b)
    }

    /// In-place bitwise OR (`self |= other`).
    ///
    /// # Errors
    ///
    /// Returns [`ScError::LengthMismatch`] if lengths differ.
    pub fn or_assign(&mut self, other: &BitStream) -> Result<(), ScError> {
        self.zip_assign(other, |a, b| a | b)
    }

    /// In-place bitwise XOR (`self ^= other`).
    ///
    /// # Errors
    ///
    /// Returns [`ScError::LengthMismatch`] if lengths differ.
    pub fn xor_assign(&mut self, other: &BitStream) -> Result<(), ScError> {
        self.zip_assign(other, |a, b| a ^ b)
    }

    fn zip_assign<F: Fn(u64, u64) -> u64>(
        &mut self,
        other: &BitStream,
        f: F,
    ) -> Result<(), ScError> {
        if self.len != other.len {
            return Err(ScError::LengthMismatch {
                left: self.len,
                right: other.len,
            });
        }
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a = f(*a, b);
        }
        self.mask_tail();
        Ok(())
    }

    /// Bitwise NOT — SC complement `1 - x`.
    #[must_use]
    pub fn not(&self) -> BitStream {
        let mut out = BitStream {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        out.mask_tail();
        out
    }

    /// Three-input bitwise majority — the CIM-friendly approximation of the
    /// 2-to-1 MUX used for scaled addition (`sel` as the third input).
    ///
    /// # Errors
    ///
    /// Returns [`ScError::LengthMismatch`] if lengths differ.
    pub fn maj3(&self, b: &BitStream, c: &BitStream) -> Result<BitStream, ScError> {
        if self.len != b.len {
            return Err(ScError::LengthMismatch {
                left: self.len,
                right: b.len,
            });
        }
        if self.len != c.len {
            return Err(ScError::LengthMismatch {
                left: self.len,
                right: c.len,
            });
        }
        let words = self
            .words
            .iter()
            .zip(&b.words)
            .zip(&c.words)
            .map(|((&x, &y), &z)| (x & y) | (x & z) | (y & z))
            .collect();
        Ok(BitStream {
            words,
            len: self.len,
        })
    }

    /// Bitwise 2-to-1 MUX: for each position, selects `self` when the select
    /// bit is `1`, else `other` — exact SC scaled addition
    /// `p_sel·p_self + (1-p_sel)·p_other`.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::LengthMismatch`] if lengths differ.
    pub fn mux(&self, other: &BitStream, select: &BitStream) -> Result<BitStream, ScError> {
        if self.len != other.len {
            return Err(ScError::LengthMismatch {
                left: self.len,
                right: other.len,
            });
        }
        if self.len != select.len {
            return Err(ScError::LengthMismatch {
                left: self.len,
                right: select.len,
            });
        }
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .zip(&select.words)
            .map(|((&a, &b), &s)| (a & s) | (b & !s))
            .collect();
        let mut out = BitStream {
            words,
            len: self.len,
        };
        out.mask_tail();
        Ok(out)
    }

    /// Rotates the stream left by `k` positions (bit `k` becomes bit 0).
    ///
    /// Rotation is the classic low-cost decorrelation trick: a stream and
    /// its rotation have SCC ≈ 0 for most encodings. Runs word-at-a-time
    /// (this sits on the decorrelation hot path): the result is
    /// `(self >> k) | (self << (len − k))` over the packed words, with the
    /// shift carries threaded between adjacent words.
    #[must_use]
    pub fn rotate_left(&self, k: usize) -> BitStream {
        if self.len == 0 {
            return self.clone();
        }
        let k = k % self.len;
        if k == 0 {
            return self.clone();
        }
        let mut out = self.shifted_down(k);
        let high = self.shifted_up(self.len - k);
        for (o, h) in out.words.iter_mut().zip(&high.words) {
            *o |= h;
        }
        out.mask_tail();
        out
    }

    /// Logical shift toward lower bit indices: `out[i] = self[i + k]` for
    /// `i < len − k`, zero above. (Bit `i` lives at `words[i/64]`, so this
    /// is a right shift of the word representation.)
    fn shifted_down(&self, k: usize) -> BitStream {
        debug_assert!(k <= self.len);
        let nwords = self.words.len();
        let ws = k / 64;
        let bs = (k % 64) as u32;
        let mut words = vec![0u64; nwords];
        for (w, out) in words.iter_mut().enumerate() {
            let lo = self.words.get(w + ws).copied().unwrap_or(0);
            let hi = self.words.get(w + ws + 1).copied().unwrap_or(0);
            *out = if bs == 0 {
                lo
            } else {
                (lo >> bs) | (hi << (64 - bs))
            };
        }
        BitStream {
            words,
            len: self.len,
        }
    }

    /// Logical shift toward higher bit indices: `out[i] = self[i − k]` for
    /// `i ≥ k`, zero below.
    fn shifted_up(&self, k: usize) -> BitStream {
        debug_assert!(k <= self.len);
        let nwords = self.words.len();
        let ws = k / 64;
        let bs = (k % 64) as u32;
        let mut words = vec![0u64; nwords];
        for (w, out) in words.iter_mut().enumerate() {
            let hi = if w >= ws { self.words[w - ws] } else { 0 };
            let lo = if w > ws { self.words[w - ws - 1] } else { 0 };
            *out = if bs == 0 {
                hi
            } else {
                (hi << bs) | (lo >> (64 - bs))
            };
        }
        let mut s = BitStream {
            words,
            len: self.len,
        };
        s.mask_tail();
        s
    }

    fn zip_words<F: Fn(u64, u64) -> u64>(
        &self,
        other: &BitStream,
        f: F,
    ) -> Result<BitStream, ScError> {
        if self.len != other.len {
            return Err(ScError::LengthMismatch {
                left: self.len,
                right: other.len,
            });
        }
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| f(a, b))
            .collect();
        let mut out = BitStream {
            words,
            len: self.len,
        };
        out.mask_tail();
        Ok(out)
    }

    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
        // Defensive: drop any excess words (can only arise from from_words).
        self.words.truncate(self.len.div_ceil(64));
    }
}

impl fmt::Debug for BitStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitStream(len={}, p={:.4}, ", self.len, self.value())?;
        let shown = self.len.min(32);
        for i in 0..shown {
            write!(f, "{}", u8::from(self.get(i).unwrap_or(false)))?;
        }
        if self.len > shown {
            write!(f, "…")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<bool> for BitStream {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitStream::from_bools(iter)
    }
}

impl Extend<bool> for BitStream {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        let iter = iter.into_iter();
        let (lower, _) = iter.size_hint();
        let needed = (self.len + lower).div_ceil(64);
        self.words.reserve(needed.saturating_sub(self.words.len()));
        for b in iter {
            self.push(b);
        }
    }
}

impl<'a> IntoIterator for &'a BitStream {
    type Item = bool;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Iterator over the bits of a [`BitStream`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    stream: &'a BitStream,
    pos: usize,
}

impl Iterator for Iter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        let b = self.stream.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.stream.len - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitStream::zeros(100);
        assert_eq!(z.count_ones(), 0);
        assert_eq!(z.len(), 100);
        let o = BitStream::ones(100);
        assert_eq!(o.count_ones(), 100);
        assert_eq!(o.value(), 1.0);
    }

    #[test]
    fn tail_bits_are_masked() {
        let o = BitStream::ones(65);
        assert_eq!(o.as_words().len(), 2);
        assert_eq!(o.as_words()[1], 1);
        let n = BitStream::zeros(65).not();
        assert_eq!(n.count_ones(), 65);
    }

    #[test]
    fn push_and_get() {
        let mut s = BitStream::zeros(0);
        for i in 0..130 {
            s.push(i % 3 == 0);
        }
        assert_eq!(s.len(), 130);
        assert_eq!(s.get(0), Some(true));
        assert_eq!(s.get(1), Some(false));
        assert_eq!(s.get(129), Some(true));
        assert_eq!(s.get(130), None);
    }

    #[test]
    fn and_is_multiplication_for_disjoint_patterns() {
        let a = BitStream::from_fn(128, |i| i % 2 == 0); // p = 0.5
        let b = BitStream::from_fn(128, |i| i % 4 < 2); // p = 0.5
        let c = a.and(&b).unwrap();
        assert_eq!(c.value(), 0.25);
    }

    #[test]
    fn xor_of_correlated_is_absolute_difference() {
        // "correlated": overlapping prefixes of ones.
        let a = BitStream::from_fn(100, |i| i < 70);
        let b = BitStream::from_fn(100, |i| i < 40);
        let d = a.xor(&b).unwrap();
        assert!((d.value() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn mux_is_exact_scaled_addition() {
        let a = BitStream::ones(64);
        let b = BitStream::zeros(64);
        let s = BitStream::from_fn(64, |i| i % 2 == 0); // p = 0.5
        let out = a.mux(&b, &s).unwrap();
        assert_eq!(out.value(), 0.5);
    }

    #[test]
    fn maj3_matches_truth_table() {
        let a = BitStream::from_bools([false, false, false, false, true, true, true, true]);
        let b = BitStream::from_bools([false, false, true, true, false, false, true, true]);
        let c = BitStream::from_bools([false, true, false, true, false, true, false, true]);
        let m = a.maj3(&b, &c).unwrap();
        let expect = [false, false, false, true, false, true, true, true];
        for (i, e) in expect.iter().enumerate() {
            assert_eq!(m.get(i), Some(*e), "position {i}");
        }
    }

    #[test]
    fn length_mismatch_is_reported() {
        let a = BitStream::zeros(10);
        let b = BitStream::zeros(11);
        assert_eq!(
            a.and(&b),
            Err(ScError::LengthMismatch {
                left: 10,
                right: 11
            })
        );
    }

    #[test]
    fn rotation_preserves_value() {
        let a = BitStream::from_fn(97, |i| i * 7 % 13 < 5);
        let r = a.rotate_left(31);
        assert_eq!(a.count_ones(), r.count_ones());
        assert_eq!(r.get(0), a.get(31));
    }

    #[test]
    fn from_words_masks_excess_bits() {
        let s = BitStream::from_words(vec![u64::MAX], 10);
        assert_eq!(s.count_ones(), 10);
    }

    #[test]
    fn iterator_round_trip() {
        let a = BitStream::from_fn(77, |i| i % 5 == 0);
        let b: BitStream = a.iter().collect();
        assert_eq!(a, b);
        assert_eq!(a.iter().len(), 77);
    }
}
