//! Error types shared across the stochastic-computing stack.

use std::fmt;

/// Errors produced by stochastic-computing operations.
///
/// All fallible public functions in this crate return `Result<_, ScError>`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScError {
    /// A probability was outside the closed interval `[0, 1]`.
    InvalidProbability(f64),
    /// Two bit-streams that must have equal length did not.
    LengthMismatch {
        /// Length of the left-hand operand.
        left: usize,
        /// Length of the right-hand operand.
        right: usize,
    },
    /// A bit width was zero or larger than the supported maximum (63).
    InvalidBitWidth(u32),
    /// A fixed-point value did not fit in the requested bit width.
    ValueOutOfRange {
        /// The offending value.
        value: u64,
        /// The bit width it was supposed to fit in.
        bits: u32,
    },
    /// No maximal-length feedback polynomial is known for the requested
    /// LFSR width.
    UnsupportedLfsrWidth(u32),
    /// An LFSR was seeded with the all-zero (locked-up) state.
    ZeroLfsrSeed,
    /// The requested Sobol dimension exceeds the built-in direction-number
    /// table.
    UnsupportedSobolDimension(usize),
    /// A bit-stream was empty where a non-empty stream is required.
    EmptyBitStream,
    /// Division was requested with a divisor stream encoding zero.
    DivisionByZero,
    /// A segmented bit source was configured with a zero segment size.
    ZeroSegmentSize,
}

impl fmt::Display for ScError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScError::InvalidProbability(p) => {
                write!(f, "probability {p} is outside [0, 1]")
            }
            ScError::LengthMismatch { left, right } => {
                write!(f, "bit-stream lengths differ: {left} vs {right}")
            }
            ScError::InvalidBitWidth(bits) => {
                write!(f, "bit width {bits} is not in 1..=63")
            }
            ScError::ValueOutOfRange { value, bits } => {
                write!(f, "value {value} does not fit in {bits} bits")
            }
            ScError::UnsupportedLfsrWidth(bits) => {
                write!(
                    f,
                    "no maximal-length polynomial table entry for {bits}-bit lfsr"
                )
            }
            ScError::ZeroLfsrSeed => write!(f, "lfsr seed must be nonzero"),
            ScError::UnsupportedSobolDimension(d) => {
                write!(f, "sobol dimension {d} exceeds the built-in table")
            }
            ScError::EmptyBitStream => write!(f, "bit-stream must not be empty"),
            ScError::DivisionByZero => write!(f, "divisor bit-stream encodes zero"),
            ScError::ZeroSegmentSize => write!(f, "segment size must be nonzero"),
        }
    }
}

impl std::error::Error for ScError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ScError::InvalidProbability(1.5);
        assert_eq!(e.to_string(), "probability 1.5 is outside [0, 1]");
        let e = ScError::LengthMismatch { left: 8, right: 16 };
        assert!(e.to_string().contains("8 vs 16"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ScError>();
    }
}
