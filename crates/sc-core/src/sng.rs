//! Stochastic number generation (binary → bit-stream conversion).
//!
//! An SNG compares a binary operand `X` against `N` random numbers and
//! emits a `1` whenever the random number is **less than** `X`; the result
//! encodes `P(1) ≈ X / 2^bits`. The comparison is exact across differing
//! operand/random widths (the paper compares 8-bit inputs against `M`-bit
//! in-memory random numbers with `M = 5..=9`).

use crate::bitstream::BitStream;
use crate::error::ScError;
use crate::prob::{Fixed, Prob};
use crate::rng::RandomSource;

/// A comparator-based stochastic number generator over any
/// [`RandomSource`].
///
/// Streams generated from the **same** source instance (and hence the same
/// random-number sequence) are maximally correlated; streams from
/// independent sources are uncorrelated. This is the correlation-control
/// mechanism SC operations rely on (§II-B).
///
/// # Example
///
/// ```
/// use sc_core::prelude::*;
///
/// # fn main() -> Result<(), ScError> {
/// let mut sng = Sng::new(Sobol::new(0, 8)?);
/// let s = sng.generate_fixed(Fixed::from_u8(64), 256);
/// assert!((s.value() - 0.25).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Sng<R> {
    rng: R,
}

impl<R: RandomSource> Sng<R> {
    /// Creates an SNG over the given random source.
    pub fn new(rng: R) -> Self {
        Sng { rng }
    }

    /// Borrows the underlying random source.
    pub fn rng(&self) -> &R {
        &self.rng
    }

    /// Mutably borrows the underlying random source.
    pub fn rng_mut(&mut self) -> &mut R {
        &mut self.rng
    }

    /// Consumes the SNG, returning the random source.
    pub fn into_inner(self) -> R {
        self.rng
    }

    /// Generates an `n`-bit stream encoding the fixed-point operand.
    ///
    /// Bit `i` is `1` iff `rn_i / 2^M < x / 2^B` exactly, where `M` is the
    /// random-source width and `B` the operand width.
    #[must_use]
    pub fn generate_fixed(&mut self, x: Fixed, n: usize) -> BitStream {
        let m = self.rng.bits();
        let b = x.bits();
        BitStream::from_fn(n, |_| {
            let rn = self.rng.next_value();
            // rn / 2^m < x / 2^b  <=>  rn << b < x << m
            (u128::from(rn) << b) < (u128::from(x.value()) << m)
        })
    }

    /// Generates an `n`-bit stream for a real-valued probability by
    /// thresholding at full source resolution.
    #[must_use]
    pub fn generate_prob(&mut self, p: Prob, n: usize) -> BitStream {
        let m = self.rng.bits();
        let scale = (1u64 << m) as f64;
        // Round to the nearest representable threshold; p = 1.0 maps to a
        // threshold of 2^m, which every random value is below.
        let threshold = (p.get() * scale).round() as u64;
        BitStream::from_fn(n, |_| self.rng.next_value() < threshold)
    }

    /// Generates a pair of streams sharing the same random numbers —
    /// maximally (positively) correlated, as required by XOR subtraction,
    /// CORDIV division, minimum, and maximum.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidBitWidth`] if the operand widths differ
    /// from each other (equal widths are required so a single comparison
    /// stream orders both operands consistently).
    pub fn generate_correlated(
        &mut self,
        x: Fixed,
        y: Fixed,
        n: usize,
    ) -> Result<(BitStream, BitStream), ScError> {
        if x.bits() != y.bits() {
            return Err(ScError::InvalidBitWidth(y.bits()));
        }
        let m = self.rng.bits();
        let b = x.bits();
        let mut sx = BitStream::zeros(n);
        let mut sy = BitStream::zeros(n);
        for i in 0..n {
            let rn = u128::from(self.rng.next_value()) << b;
            if rn < (u128::from(x.value()) << m) {
                sx.set(i, true);
            }
            if rn < (u128::from(y.value()) << m) {
                sy.set(i, true);
            }
        }
        Ok((sx, sy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::scc;
    use crate::rng::{Lfsr, Sobol, UniformSource};

    #[test]
    fn sobol_generation_is_nearly_exact() {
        let mut sng = Sng::new(Sobol::new(0, 16).unwrap());
        for &x in &[0u8, 1, 64, 128, 200, 255] {
            let s = sng.generate_fixed(Fixed::from_u8(x), 256);
            let expect = f64::from(x) / 256.0;
            assert!(
                (s.value() - expect).abs() <= 1.0 / 256.0 + 1e-12,
                "x={x}: got {} want {expect}",
                s.value()
            );
            sng.rng_mut().reset();
        }
    }

    #[test]
    fn lfsr_full_period_is_exact_for_8bit_operands() {
        // Over exactly 255 steps a maximal 8-bit LFSR emits each value in
        // 1..=255 once, so the count of values < X is X - 1 for X >= 1.
        let mut sng = Sng::new(Lfsr::maximal(8, 0x5A).unwrap());
        let x = 100u8;
        let s = sng.generate_fixed(Fixed::from_u8(x), 255);
        assert_eq!(s.count_ones(), u64::from(x) - 1);
    }

    #[test]
    fn prob_extremes() {
        let mut sng = Sng::new(UniformSource::seed_from_u64(3));
        let zero = sng.generate_prob(Prob::ZERO, 128);
        assert_eq!(zero.count_ones(), 0);
        let one = sng.generate_prob(Prob::ONE, 128);
        assert_eq!(one.count_ones(), 128);
    }

    #[test]
    fn shared_rng_yields_maximal_correlation() {
        let mut sng = Sng::new(UniformSource::seed_from_u64(17));
        let (sx, sy) = sng
            .generate_correlated(Fixed::from_u8(90), Fixed::from_u8(180), 4096)
            .unwrap();
        // Shared random numbers: x bit implies y bit (90 < 180), SCC ≈ +1.
        let overlap = sx.and(&sy).unwrap();
        assert_eq!(overlap.count_ones(), sx.count_ones());
        assert!(scc(&sx, &sy).unwrap() > 0.99);
    }

    #[test]
    fn independent_rngs_yield_low_correlation() {
        let mut a = Sng::new(UniformSource::seed_from_u64(100));
        let mut b = Sng::new(UniformSource::seed_from_u64(200));
        let sx = a.generate_fixed(Fixed::from_u8(128), 8192);
        let sy = b.generate_fixed(Fixed::from_u8(128), 8192);
        assert!(scc(&sx, &sy).unwrap().abs() < 0.05);
    }

    #[test]
    fn mismatched_correlated_widths_rejected() {
        let mut sng = Sng::new(UniformSource::seed_from_u64(5));
        let x = Fixed::new(3, 4).unwrap();
        let y = Fixed::new(3, 5).unwrap();
        assert!(sng.generate_correlated(x, y, 64).is_err());
    }

    #[test]
    fn narrow_source_quantizes_but_tracks_target() {
        // M = 5 against an 8-bit operand: expect quantization error bounded
        // by one LSB of the 5-bit source over a full sweep.
        let mut sng = Sng::new(Sobol::new(0, 5).unwrap());
        let s = sng.generate_fixed(Fixed::from_u8(77), 32);
        let expect = 77.0 / 256.0;
        assert!((s.value() - expect).abs() <= 1.0 / 32.0 + 1e-12);
    }
}
