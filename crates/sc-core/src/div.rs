//! Stochastic division.
//!
//! The paper adopts **CORDIV** (Chen & Hayes, ISVLSI'16) for `x / y` with
//! correlated inputs and `x ≤ y` (Fig. 2 and the image-matting application
//! of Fig. 3c). CORDIV is inherently sequential — a stored state bit is
//! replayed whenever the divisor bit is 0 — which is why the paper's
//! Table III shows the division row with `O(N)` latency even in memory.
//! The in-ReRAM mapping keeps the state bit in the peripheral write-driver
//! latch instead of writing it back to the array (§III-B).
//!
//! A [`jk_divide`] variant based on the JK flip-flop's truth table is also
//! provided; it computes `p_J / (p_J + p_K)` and is the building block the
//! paper references for latch-based division.

use crate::bitstream::BitStream;
use crate::error::ScError;

/// A cycle-accurate CORDIV division unit.
///
/// Processes one (dividend, divisor) bit pair per step; the internal state
/// bit models the D-latch in the ReRAM periphery. Use [`cordiv`] for the
/// whole-stream convenience form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CordivUnit {
    stored: bool,
}

impl CordivUnit {
    /// Creates a unit with the stored bit cleared.
    #[must_use]
    pub fn new() -> Self {
        CordivUnit { stored: false }
    }

    /// Processes one bit pair and returns the quotient bit.
    ///
    /// When the divisor bit is 1, the dividend bit is both emitted and
    /// latched; when it is 0, the latched bit is replayed.
    pub fn step(&mut self, dividend: bool, divisor: bool) -> bool {
        if divisor {
            self.stored = dividend;
            dividend
        } else {
            self.stored
        }
    }

    /// The current latched bit.
    #[must_use]
    pub fn stored(&self) -> bool {
        self.stored
    }
}

/// CORDIV stochastic division `x / y` over *correlated* streams with
/// `p_x ≤ p_y`.
///
/// With maximal positive correlation, every dividend 1-bit coincides with a
/// divisor 1-bit, so conditioning on `y_i = 1` yields fair samples of
/// `x/y`; divisor-0 positions replay the last fair sample.
///
/// # Errors
///
/// * [`ScError::LengthMismatch`] — stream lengths differ.
/// * [`ScError::EmptyBitStream`] — streams are empty.
/// * [`ScError::DivisionByZero`] — the divisor stream contains no ones.
///
/// # Example
///
/// ```
/// use sc_core::prelude::*;
///
/// # fn main() -> Result<(), ScError> {
/// let mut sng = Sng::new(UniformSource::seed_from_u64(1));
/// let (x, y) = sng.generate_correlated(
///     Fixed::from_u8(60), Fixed::from_u8(120), 4096)?;
/// let q = cordiv(&x, &y)?;
/// assert!((q.value() - 0.5).abs() < 0.05);
/// # Ok(())
/// # }
/// ```
pub fn cordiv(dividend: &BitStream, divisor: &BitStream) -> Result<BitStream, ScError> {
    if dividend.len() != divisor.len() {
        return Err(ScError::LengthMismatch {
            left: dividend.len(),
            right: divisor.len(),
        });
    }
    if dividend.is_empty() {
        return Err(ScError::EmptyBitStream);
    }
    if divisor.count_ones() == 0 {
        return Err(ScError::DivisionByZero);
    }
    let mut unit = CordivUnit::new();
    let mut out = BitStream::zeros(dividend.len());
    for i in 0..dividend.len() {
        let q = unit.step(
            dividend.get(i).unwrap_or(false),
            divisor.get(i).unwrap_or(false),
        );
        if q {
            out.set(i, true);
        }
    }
    Ok(out)
}

/// JK-flip-flop stochastic division: output probability converges to
/// `p_J / (p_J + p_K)` for uncorrelated inputs.
///
/// The JK truth table (J=K=0: hold, J=1 K=0: set, J=0 K=1: reset,
/// J=K=1: toggle) is exactly what the paper implements with the existing
/// L0/L1 latch pair in the ReRAM periphery.
///
/// # Errors
///
/// * [`ScError::LengthMismatch`] — stream lengths differ.
/// * [`ScError::EmptyBitStream`] — streams are empty.
pub fn jk_divide(j: &BitStream, k: &BitStream) -> Result<BitStream, ScError> {
    if j.len() != k.len() {
        return Err(ScError::LengthMismatch {
            left: j.len(),
            right: k.len(),
        });
    }
    if j.is_empty() {
        return Err(ScError::EmptyBitStream);
    }
    let mut q = false;
    let mut out = BitStream::zeros(j.len());
    for i in 0..j.len() {
        let jb = j.get(i).unwrap_or(false);
        let kb = k.get(i).unwrap_or(false);
        q = match (jb, kb) {
            (false, false) => q,
            (true, false) => true,
            (false, true) => false,
            (true, true) => !q,
        };
        if q {
            out.set(i, true);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prob::Fixed;
    use crate::rng::UniformSource;
    use crate::sng::Sng;

    #[test]
    fn cordiv_unit_truth_table() {
        let mut u = CordivUnit::new();
        assert!(!u.step(false, false)); // replay initial 0
        assert!(u.step(true, true)); // pass & latch 1
        assert!(u.step(false, false)); // replay latched 1
        assert!(u.stored());
        assert!(!u.step(false, true)); // pass & latch 0
        assert!(!u.step(true, false)); // replay latched 0
    }

    #[test]
    fn cordiv_estimates_ratio() {
        let mut sng = Sng::new(UniformSource::seed_from_u64(77));
        for &(x, y) in &[(30u8, 200u8), (100, 150), (10, 240), (128, 128)] {
            let (sx, sy) = sng
                .generate_correlated(Fixed::from_u8(x), Fixed::from_u8(y), 8192)
                .unwrap();
            let q = cordiv(&sx, &sy).unwrap();
            let expect = f64::from(x) / f64::from(y);
            assert!(
                (q.value() - expect).abs() < 0.06,
                "{x}/{y}: got {} want {expect}",
                q.value()
            );
        }
    }

    #[test]
    fn cordiv_rejects_zero_divisor() {
        let x = BitStream::zeros(64);
        let y = BitStream::zeros(64);
        assert_eq!(cordiv(&x, &y), Err(ScError::DivisionByZero));
    }

    #[test]
    fn cordiv_rejects_empty() {
        let x = BitStream::zeros(0);
        assert_eq!(cordiv(&x, &x), Err(ScError::EmptyBitStream));
    }

    #[test]
    fn cordiv_length_mismatch() {
        let x = BitStream::zeros(8);
        let y = BitStream::ones(16);
        assert!(matches!(
            cordiv(&x, &y),
            Err(ScError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn jk_converges_to_j_over_j_plus_k() {
        let mut a = Sng::new(UniformSource::seed_from_u64(8));
        let mut b = Sng::new(UniformSource::seed_from_u64(9));
        let j = a.generate_fixed(Fixed::from_u8(60), 16384);
        let k = b.generate_fixed(Fixed::from_u8(180), 16384);
        let q = jk_divide(&j, &k).unwrap();
        let expect = 60.0 / (60.0 + 180.0);
        assert!((q.value() - expect).abs() < 0.03, "{}", q.value());
    }

    #[test]
    fn division_of_equal_streams_is_one() {
        let mut sng = Sng::new(UniformSource::seed_from_u64(4));
        let (sx, sy) = sng
            .generate_correlated(Fixed::from_u8(99), Fixed::from_u8(99), 1024)
            .unwrap();
        let q = cordiv(&sx, &sy).unwrap();
        // x/y = 1, every divisor-1 position passes a 1; zero positions
        // replay — allow the initial-state transient.
        assert!(q.value() > 0.95, "{}", q.value());
    }
}
