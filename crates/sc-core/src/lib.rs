//! # sc-core — stochastic computing fundamentals
//!
//! This crate implements the stochastic-computing (SC) substrate used by the
//! in-ReRAM SC accelerator reproduction of *"All-in-Memory Stochastic
//! Computing using ReRAM"* (DAC 2025):
//!
//! * [`BitStream`] — a packed stochastic bit-stream where a value
//!   `x ∈ [0, 1]` is encoded by the probability of observing a `1`.
//! * [`rng`] — the random-number sources the paper compares: maximal-length
//!   LFSRs (PRNG), Sobol sequences (QRNG), a software uniform generator
//!   (xoshiro256++), and segmented true-random bit sources (the in-memory
//!   TRNG abstraction).
//! * [`sng`] — stochastic number generation by comparison of a binary
//!   operand against a sequence of random numbers.
//! * [`ops`] — the SC arithmetic of the paper's Fig. 2: AND multiplication,
//!   MUX/MAJ scaled addition, OR approximate addition, XOR absolute
//!   subtraction, AND minimum, OR maximum.
//! * [`div`] — CORDIV correlated division and JK-flip-flop division.
//! * [`correlation`] — stochastic cross-correlation (SCC) measurement and
//!   correlation control utilities.
//! * [`convert`] — stochastic-to-binary conversion (population count and
//!   saturating-counter models).
//! * [`metrics`] — the MSE evaluation harness behind Tables I and II.
//!
//! # Example
//!
//! ```
//! use sc_core::prelude::*;
//!
//! # fn main() -> Result<(), ScError> {
//! // Encode 0.75 and 0.5 as 256-bit streams from two independent LFSRs,
//! // multiply them with a bitwise AND, and read the result back.
//! let mut sng_a = Sng::new(Lfsr::maximal(8, 0xACu64)?);
//! let mut sng_b = Sng::new(Lfsr::maximal(8, 0x5Du64)?);
//! let a = sng_a.generate_prob(Prob::new(0.75)?, 256);
//! let b = sng_b.generate_prob(Prob::new(0.5)?, 256);
//! let product = a.and(&b)?;
//! assert!((product.value() - 0.375).abs() < 0.1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bitstream;
pub mod convert;
pub mod correlation;
pub mod deterministic;
pub mod div;
pub mod error;
pub mod metrics;
pub mod ops;
pub mod prob;
pub mod rng;
pub mod sng;

pub use bitstream::BitStream;
pub use error::ScError;
pub use prob::{Fixed, Prob};

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::bitstream::BitStream;
    pub use crate::convert::{to_binary, CounterConverter};
    pub use crate::correlation::scc;
    pub use crate::div::{cordiv, CordivUnit};
    pub use crate::error::ScError;
    pub use crate::metrics::{mse_percent, MseEvaluator};
    pub use crate::ops;
    pub use crate::prob::{Fixed, Prob};
    pub use crate::rng::{
        BitSource, Lfsr, RandomSource, SegmentedSource, Sobol, SplitMix64, UniformSource,
        Xoshiro256,
    };
    pub use crate::sng::Sng;
}
