//! Probability and fixed-point value types.
//!
//! Stochastic computing encodes a value `x ∈ [0, 1]` as the probability of a
//! `1` in a bit-stream. [`Prob`] is a validated probability; [`Fixed`] is an
//! unsigned fixed-point fraction `value / 2^bits`, the binary-radix operand
//! format the in-memory comparator consumes (the paper uses 8-bit image
//! pixels, i.e. `Fixed { bits: 8 }`).

use crate::error::ScError;
use std::fmt;

/// A probability in the closed interval `[0, 1]`.
///
/// # Example
///
/// ```
/// use sc_core::Prob;
///
/// # fn main() -> Result<(), sc_core::ScError> {
/// let p = Prob::new(0.25)?;
/// assert_eq!(p.get(), 0.25);
/// assert!(Prob::new(1.5).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Prob(f64);

impl Prob {
    /// A probability of exactly zero.
    pub const ZERO: Prob = Prob(0.0);
    /// A probability of exactly one.
    pub const ONE: Prob = Prob(1.0);
    /// A probability of exactly one half (the MUX select weight).
    pub const HALF: Prob = Prob(0.5);

    /// Creates a validated probability.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidProbability`] if `p` is NaN or outside
    /// `[0, 1]`.
    pub fn new(p: f64) -> Result<Self, ScError> {
        if p.is_nan() || !(0.0..=1.0).contains(&p) {
            Err(ScError::InvalidProbability(p))
        } else {
            Ok(Prob(p))
        }
    }

    /// Creates a probability, clamping into `[0, 1]` (NaN maps to 0).
    #[must_use]
    pub fn saturating(p: f64) -> Self {
        if p.is_nan() {
            Prob(0.0)
        } else {
            Prob(p.clamp(0.0, 1.0))
        }
    }

    /// Returns the inner `f64`.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Returns the complement probability `1 - p`.
    #[must_use]
    pub fn complement(self) -> Self {
        Prob(1.0 - self.0)
    }

    /// Quantizes this probability to an `bits`-bit fixed-point fraction by
    /// rounding to the nearest representable value.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidBitWidth`] if `bits` is not in `1..=63`.
    pub fn to_fixed(self, bits: u32) -> Result<Fixed, ScError> {
        if bits == 0 || bits > 63 {
            return Err(ScError::InvalidBitWidth(bits));
        }
        let scale = (1u64 << bits) as f64;
        let value = (self.0 * scale).round().min(scale) as u64;
        // A probability of exactly 1.0 saturates to the all-ones code, the
        // closest representable value in the `value / 2^bits` format.
        let value = value.min((1u64 << bits) - 1);
        Fixed::new(value, bits)
    }
}

impl fmt::Display for Prob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<Prob> for f64 {
    fn from(p: Prob) -> f64 {
        p.0
    }
}

/// An unsigned fixed-point fraction `value / 2^bits` with `bits ∈ 1..=63`.
///
/// This is the binary operand format consumed by stochastic number
/// generators: an 8-bit pixel `X` is `Fixed::new(X, 8)` and encodes the
/// probability `X / 256`.
///
/// # Example
///
/// ```
/// use sc_core::Fixed;
///
/// # fn main() -> Result<(), sc_core::ScError> {
/// let x = Fixed::new(192, 8)?;
/// assert_eq!(x.to_prob().get(), 0.75);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fixed {
    value: u64,
    bits: u32,
}

impl Fixed {
    /// Creates a fixed-point fraction `value / 2^bits`.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidBitWidth`] if `bits` is not in `1..=63`, or
    /// [`ScError::ValueOutOfRange`] if `value >= 2^bits`.
    pub fn new(value: u64, bits: u32) -> Result<Self, ScError> {
        if bits == 0 || bits > 63 {
            return Err(ScError::InvalidBitWidth(bits));
        }
        if value >= (1u64 << bits) {
            return Err(ScError::ValueOutOfRange { value, bits });
        }
        Ok(Fixed { value, bits })
    }

    /// Creates an 8-bit fixed-point fraction from a pixel intensity.
    #[must_use]
    pub fn from_u8(value: u8) -> Self {
        Fixed {
            value: u64::from(value),
            bits: 8,
        }
    }

    /// Returns the raw integer value.
    #[must_use]
    pub fn value(self) -> u64 {
        self.value
    }

    /// Returns the bit width.
    #[must_use]
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// Returns the encoded probability `value / 2^bits`.
    #[must_use]
    pub fn to_prob(self) -> Prob {
        Prob::saturating(self.value as f64 / (1u64 << self.bits) as f64)
    }

    /// Re-quantizes to a different bit width, rounding to nearest.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidBitWidth`] if `bits` is not in `1..=63`.
    pub fn requantize(self, bits: u32) -> Result<Self, ScError> {
        self.to_prob().to_fixed(bits)
    }

    /// Compares this fraction against another fraction of possibly
    /// different width: returns `true` when `self > other` as exact
    /// rationals (`self.value * 2^other.bits > other.value * 2^self.bits`).
    #[must_use]
    pub fn gt_fraction(self, other: Fixed) -> bool {
        let lhs = u128::from(self.value) << other.bits;
        let rhs = u128::from(other.value) << self.bits;
        lhs > rhs
    }
}

impl fmt::Display for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/2^{}", self.value, self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prob_rejects_out_of_range() {
        assert!(Prob::new(-0.1).is_err());
        assert!(Prob::new(1.1).is_err());
        assert!(Prob::new(f64::NAN).is_err());
        assert!(Prob::new(0.0).is_ok());
        assert!(Prob::new(1.0).is_ok());
    }

    #[test]
    fn prob_saturating_clamps() {
        assert_eq!(Prob::saturating(-3.0).get(), 0.0);
        assert_eq!(Prob::saturating(42.0).get(), 1.0);
        assert_eq!(Prob::saturating(f64::NAN).get(), 0.0);
    }

    #[test]
    fn prob_complement() {
        assert_eq!(Prob::new(0.25).unwrap().complement().get(), 0.75);
    }

    #[test]
    fn fixed_round_trips_probability() {
        let p = Prob::new(0.5).unwrap();
        let f = p.to_fixed(8).unwrap();
        assert_eq!(f.value(), 128);
        assert_eq!(f.to_prob().get(), 0.5);
    }

    #[test]
    fn fixed_one_saturates_to_all_ones() {
        let f = Prob::ONE.to_fixed(8).unwrap();
        assert_eq!(f.value(), 255);
    }

    #[test]
    fn fixed_rejects_overflow() {
        assert!(Fixed::new(256, 8).is_err());
        assert!(Fixed::new(255, 8).is_ok());
        assert!(Fixed::new(0, 0).is_err());
        assert!(Fixed::new(0, 64).is_err());
    }

    #[test]
    fn fixed_fraction_comparison_across_widths() {
        // 3/8 > 5/16 (0.375 > 0.3125)
        let a = Fixed::new(3, 3).unwrap();
        let b = Fixed::new(5, 4).unwrap();
        assert!(a.gt_fraction(b));
        assert!(!b.gt_fraction(a));
        // equal fractions are not greater: 2/4 vs 8/16
        let c = Fixed::new(2, 2).unwrap();
        let d = Fixed::new(8, 4).unwrap();
        assert!(!c.gt_fraction(d));
        assert!(!d.gt_fraction(c));
    }

    #[test]
    fn requantize_rounds_to_nearest() {
        let x = Fixed::from_u8(200); // 0.78125
        let q = x.requantize(4).unwrap(); // nearest multiple of 1/16 is 12.5/16 -> 13/16
        assert_eq!(q.value(), 13);
    }
}
