//! Stochastic-to-binary conversion (step ❸ of the SC flow).
//!
//! The reference CMOS design counts the ones of the output stream with a
//! `log₂N`-bit counter over `N` clock cycles ([`CounterConverter`]).
//! The paper's in-memory alternative measures the whole population count
//! in a single step through bitline current accumulation into an ADC; that
//! analog path is modeled in the `reram` crate (`reram::adc`), while
//! [`to_binary`] provides the ideal (noise-free) digital reference both
//! converge to.

use crate::bitstream::BitStream;
use crate::error::ScError;
use crate::prob::Fixed;

/// Ideal stochastic-to-binary conversion: quantizes `popcount / N` to a
/// `bits`-bit fixed-point value (round-to-nearest).
///
/// # Errors
///
/// * [`ScError::EmptyBitStream`] — the stream is empty.
/// * [`ScError::InvalidBitWidth`] — `bits` not in `1..=63`.
///
/// # Example
///
/// ```
/// use sc_core::{convert::to_binary, BitStream};
///
/// # fn main() -> Result<(), sc_core::ScError> {
/// let s = BitStream::from_fn(256, |i| i < 192);
/// let x = to_binary(&s, 8)?;
/// assert_eq!(x.value(), 192);
/// # Ok(())
/// # }
/// ```
pub fn to_binary(s: &BitStream, bits: u32) -> Result<Fixed, ScError> {
    if s.is_empty() {
        return Err(ScError::EmptyBitStream);
    }
    s.prob().to_fixed(bits)
}

/// A cycle-accurate model of the CMOS `log₂N`-bit up-counter converter.
///
/// Feed bits with [`CounterConverter::clock`]; the count saturates at the
/// counter's capacity, mirroring hardware overflow protection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterConverter {
    count: u64,
    capacity: u64,
    cycles: u64,
}

impl CounterConverter {
    /// Creates a converter with a `bits`-wide counter (capacity `2^bits−1`).
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidBitWidth`] if `bits` is not in `1..=63`.
    pub fn new(bits: u32) -> Result<Self, ScError> {
        if bits == 0 || bits > 63 {
            return Err(ScError::InvalidBitWidth(bits));
        }
        Ok(CounterConverter {
            count: 0,
            capacity: (1u64 << bits) - 1,
            cycles: 0,
        })
    }

    /// Clocks one stream bit into the counter.
    pub fn clock(&mut self, bit: bool) {
        self.cycles += 1;
        if bit && self.count < self.capacity {
            self.count += 1;
        }
    }

    /// Clocks an entire stream through the counter.
    pub fn clock_stream(&mut self, s: &BitStream) {
        for b in s {
            self.clock(b);
        }
    }

    /// The accumulated count.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of clock cycles consumed — the serial-conversion latency the
    /// paper's Table III charges the CMOS designs for.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The estimated value `count / cycles`, or 0 for an unclocked counter.
    #[must_use]
    pub fn value(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.count as f64 / self.cycles as f64
        }
    }

    /// Resets count and cycle statistics.
    pub fn reset(&mut self) {
        self.count = 0;
        self.cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_conversion_round_trips() {
        for x in [0u8, 1, 127, 128, 200, 255] {
            let s = BitStream::from_fn(256, |i| i < usize::from(x));
            let f = to_binary(&s, 8).unwrap();
            assert_eq!(f.value(), u64::from(x), "x={x}");
        }
    }

    #[test]
    fn conversion_rejects_empty() {
        let s = BitStream::zeros(0);
        assert_eq!(to_binary(&s, 8), Err(ScError::EmptyBitStream));
    }

    #[test]
    fn counter_matches_popcount() {
        let s = BitStream::from_fn(200, |i| i % 3 == 0);
        let mut c = CounterConverter::new(8).unwrap();
        c.clock_stream(&s);
        assert_eq!(c.count(), s.count_ones());
        assert_eq!(c.cycles(), 200);
        assert!((c.value() - s.value()).abs() < 1e-12);
    }

    #[test]
    fn counter_saturates() {
        let mut c = CounterConverter::new(3).unwrap(); // capacity 7
        for _ in 0..20 {
            c.clock(true);
        }
        assert_eq!(c.count(), 7);
        assert_eq!(c.cycles(), 20);
    }

    #[test]
    fn counter_reset() {
        let mut c = CounterConverter::new(8).unwrap();
        c.clock(true);
        c.reset();
        assert_eq!(c.count(), 0);
        assert_eq!(c.cycles(), 0);
    }

    #[test]
    fn invalid_width_rejected() {
        assert!(CounterConverter::new(0).is_err());
        assert!(CounterConverter::new(64).is_err());
    }
}
