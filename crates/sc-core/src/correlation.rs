//! Stochastic cross-correlation (SCC) measurement and manipulation.
//!
//! SC operations have correlation *requirements*: AND-multiplication and
//! MUX/MAJ-addition need uncorrelated inputs (SCC ≈ 0), while XOR
//! subtraction, CORDIV division, minimum and maximum need maximally
//! positively correlated inputs (SCC ≈ +1). The paper's key claim over
//! prior in-memory SC designs is *correlation control*: sharing or not
//! sharing the in-memory random-number rows sets SCC by construction.
//!
//! SCC is the similarity measure of Alaghi & Hayes (2013): it normalizes
//! the covariance of two streams by the maximum achievable for their
//! marginal probabilities, giving a value in `[-1, +1]` that is invariant
//! to the encoded values themselves.

use crate::bitstream::BitStream;
use crate::error::ScError;

/// Computes the stochastic cross-correlation of two equal-length streams.
///
/// Returns a value in `[-1, +1]`: `+1` for maximal overlap, `0` for
/// independence, `-1` for maximal anti-overlap. Degenerate streams (all
/// zeros or all ones) have undefined correlation; `0.0` is returned.
///
/// # Errors
///
/// * [`ScError::LengthMismatch`] — stream lengths differ.
/// * [`ScError::EmptyBitStream`] — streams are empty.
///
/// # Example
///
/// ```
/// use sc_core::{correlation::scc, BitStream};
///
/// # fn main() -> Result<(), sc_core::ScError> {
/// let a = BitStream::from_fn(8, |i| i < 6);
/// let b = BitStream::from_fn(8, |i| i < 3);
/// assert_eq!(scc(&a, &b)?, 1.0); // nested ones: maximally correlated
/// # Ok(())
/// # }
/// ```
pub fn scc(a: &BitStream, b: &BitStream) -> Result<f64, ScError> {
    if a.len() != b.len() {
        return Err(ScError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    if a.is_empty() {
        return Err(ScError::EmptyBitStream);
    }
    let n = a.len() as f64;
    let pa = a.count_ones() as f64 / n;
    let pb = b.count_ones() as f64 / n;
    let pab = a.and(b)?.count_ones() as f64 / n;
    let delta = pab - pa * pb;
    let denom = if delta > 0.0 {
        pa.min(pb) - pa * pb
    } else {
        pa * pb - (pa + pb - 1.0).max(0.0)
    };
    if denom.abs() < 1e-15 {
        Ok(0.0)
    } else {
        Ok((delta / denom).clamp(-1.0, 1.0))
    }
}

/// Summary statistics of the pairwise overlap of two streams
/// (the `a`, `b`, `c`, `d` cells of the 2×2 contingency table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlapCounts {
    /// Positions where both streams are 1.
    pub both: u64,
    /// Positions where only the first stream is 1.
    pub only_a: u64,
    /// Positions where only the second stream is 1.
    pub only_b: u64,
    /// Positions where both are 0.
    pub neither: u64,
}

/// Computes the 2×2 overlap contingency table of two streams.
///
/// # Errors
///
/// Returns [`ScError::LengthMismatch`] if stream lengths differ.
pub fn overlap(a: &BitStream, b: &BitStream) -> Result<OverlapCounts, ScError> {
    let both = a.and(b)?.count_ones();
    let ones_a = a.count_ones();
    let ones_b = b.count_ones();
    let n = a.len() as u64;
    // neither = n − |a ∪ b|; compute the union first so no intermediate
    // underflows (ones_a + ones_b may exceed n).
    let union = ones_a + ones_b - both;
    Ok(OverlapCounts {
        both,
        only_a: ones_a - both,
        only_b: ones_b - both,
        neither: n - union,
    })
}

/// Decorrelates a stream by rotating it `k` positions — a zero-hardware
/// trick usable in memory by shifting the row read-out window.
///
/// The rotated stream encodes the same value but, for streams generated
/// from pseudo-random sources, has near-zero SCC against the original.
#[must_use]
pub fn decorrelate_by_rotation(s: &BitStream, k: usize) -> BitStream {
    s.rotate_left(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prob::Fixed;
    use crate::rng::UniformSource;
    use crate::sng::Sng;

    #[test]
    fn identical_streams_have_scc_one() {
        let mut sng = Sng::new(UniformSource::seed_from_u64(1));
        let s = sng.generate_fixed(Fixed::from_u8(100), 1024);
        assert_eq!(scc(&s, &s).unwrap(), 1.0);
    }

    #[test]
    fn complementary_streams_have_scc_minus_one() {
        let s = BitStream::from_fn(256, |i| i % 2 == 0);
        let t = s.not();
        assert_eq!(scc(&s, &t).unwrap(), -1.0);
    }

    #[test]
    fn independent_streams_have_scc_near_zero() {
        let mut a = Sng::new(UniformSource::seed_from_u64(2));
        let mut b = Sng::new(UniformSource::seed_from_u64(3));
        let sa = a.generate_fixed(Fixed::from_u8(128), 16384);
        let sb = b.generate_fixed(Fixed::from_u8(128), 16384);
        assert!(scc(&sa, &sb).unwrap().abs() < 0.05);
    }

    #[test]
    fn degenerate_streams_return_zero() {
        let z = BitStream::zeros(64);
        let o = BitStream::ones(64);
        assert_eq!(scc(&z, &o).unwrap(), 0.0);
        assert_eq!(scc(&z, &z).unwrap(), 0.0);
    }

    #[test]
    fn overlap_counts_sum_to_length() {
        let a = BitStream::from_fn(100, |i| i % 3 == 0);
        let b = BitStream::from_fn(100, |i| i % 5 == 0);
        let c = overlap(&a, &b).unwrap();
        assert_eq!(c.both + c.only_a + c.only_b + c.neither, 100);
        assert_eq!(c.both, 7); // multiples of 15 in 0..100
    }

    #[test]
    fn rotation_decorrelates_but_preserves_value() {
        let mut sng = Sng::new(UniformSource::seed_from_u64(5));
        let s = sng.generate_fixed(Fixed::from_u8(128), 8192);
        let r = decorrelate_by_rotation(&s, 1);
        assert_eq!(s.count_ones(), r.count_ones());
        assert!(scc(&s, &r).unwrap().abs() < 0.1);
    }

    #[test]
    fn scc_errors() {
        let a = BitStream::zeros(4);
        let b = BitStream::zeros(5);
        assert!(scc(&a, &b).is_err());
        let e = BitStream::zeros(0);
        assert_eq!(scc(&e, &e), Err(ScError::EmptyBitStream));
    }
}
