//! Deterministic stochastic computing (extension).
//!
//! Najafi et al., *"Performing stochastic computation deterministically"*
//! (the paper's reference \[9\]), remove randomness entirely: operands are
//! encoded as **unary** streams and paired so that every bit of one
//! operand meets every bit of the other exactly once. The AND of the two
//! streams then computes the product *exactly* in `n_a · n_b` bits — the
//! accuracy ceiling any RNG-based SNG (Tables I–II) can only approach.
//!
//! Two classic pairing mechanisms are provided:
//!
//! * [`repeat_whole`] — replay the whole stream `k` times
//!   (clock-divided "relatively prime length" style), and
//! * [`hold_each`] — hold each bit for `k` positions.
//!
//! Combining one of each on the two operands yields the exhaustive
//! cross-product ([`exact_multiply`]).

use crate::bitstream::BitStream;
use crate::error::ScError;
use crate::prob::Fixed;

/// Encodes a fixed-point value as a unary stream of length `2^bits`:
/// the first `value` positions are `1`.
///
/// # Example
///
/// ```
/// use sc_core::deterministic::unary;
/// use sc_core::Fixed;
///
/// # fn main() -> Result<(), sc_core::ScError> {
/// let s = unary(Fixed::new(3, 3)?);
/// assert_eq!(s.len(), 8);
/// assert_eq!(s.count_ones(), 3);
/// assert_eq!(s.get(2), Some(true));
/// assert_eq!(s.get(3), Some(false));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn unary(x: Fixed) -> BitStream {
    let n = 1usize << x.bits();
    let v = x.value() as usize;
    BitStream::from_fn(n, |i| i < v)
}

/// Replays the whole stream `times` times (`A A A …`).
///
/// # Errors
///
/// Returns [`ScError::EmptyBitStream`] for an empty input and
/// [`ScError::InvalidBitWidth`] for `times == 0`.
pub fn repeat_whole(s: &BitStream, times: usize) -> Result<BitStream, ScError> {
    if s.is_empty() {
        return Err(ScError::EmptyBitStream);
    }
    if times == 0 {
        return Err(ScError::InvalidBitWidth(0));
    }
    Ok(BitStream::from_fn(s.len() * times, |i| {
        s.get(i % s.len()).unwrap_or(false)
    }))
}

/// Holds each bit for `times` positions (`a₀ a₀ … a₁ a₁ …`).
///
/// # Errors
///
/// Returns [`ScError::EmptyBitStream`] for an empty input and
/// [`ScError::InvalidBitWidth`] for `times == 0`.
pub fn hold_each(s: &BitStream, times: usize) -> Result<BitStream, ScError> {
    if s.is_empty() {
        return Err(ScError::EmptyBitStream);
    }
    if times == 0 {
        return Err(ScError::InvalidBitWidth(0));
    }
    Ok(BitStream::from_fn(s.len() * times, |i| {
        s.get(i / times).unwrap_or(false)
    }))
}

/// Exact deterministic multiplication: AND of the replayed `x` stream and
/// the held `y` stream — every `x` bit meets every `y` bit exactly once,
/// so `popcount = x_value · y_value` with **zero** error.
///
/// Returns the product stream of length `2^(x.bits() + y.bits())`.
///
/// # Errors
///
/// Propagates pairing errors (cannot occur for valid operands).
///
/// # Example
///
/// ```
/// use sc_core::deterministic::exact_multiply;
/// use sc_core::Fixed;
///
/// # fn main() -> Result<(), sc_core::ScError> {
/// let p = exact_multiply(Fixed::from_u8(96), Fixed::from_u8(128))?;
/// // 0.375 × 0.5 = 0.1875, bit-exact:
/// assert_eq!(p.value(), 0.1875);
/// # Ok(())
/// # }
/// ```
pub fn exact_multiply(x: Fixed, y: Fixed) -> Result<BitStream, ScError> {
    let ux = unary(x);
    let uy = unary(y);
    let a = repeat_whole(&ux, uy.len())?;
    let b = hold_each(&uy, ux.len())?;
    a.and(&b)
}

/// Exact deterministic scaled addition `(x + y)/2` by interleaving the
/// two unary streams position-by-position.
///
/// # Errors
///
/// Returns [`ScError::InvalidBitWidth`] if the operand widths differ.
pub fn exact_scaled_add(x: Fixed, y: Fixed) -> Result<BitStream, ScError> {
    if x.bits() != y.bits() {
        return Err(ScError::InvalidBitWidth(y.bits()));
    }
    let ux = unary(x);
    let uy = unary(y);
    Ok(BitStream::from_fn(2 * ux.len(), |i| {
        if i % 2 == 0 {
            ux.get(i / 2).unwrap_or(false)
        } else {
            uy.get(i / 2).unwrap_or(false)
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unary_is_a_prefix_code() {
        for v in 0..16u64 {
            let s = unary(Fixed::new(v, 4).expect("in range"));
            assert_eq!(s.count_ones(), v);
            for i in 0..16 {
                assert_eq!(s.get(i), Some((i as u64) < v));
            }
        }
    }

    #[test]
    fn exhaustive_exact_multiplication_4bit() {
        for a in 0..16u64 {
            for b in 0..16u64 {
                let x = Fixed::new(a, 4).expect("in range");
                let y = Fixed::new(b, 4).expect("in range");
                let p = exact_multiply(x, y).expect("valid operands");
                assert_eq!(p.len(), 256);
                assert_eq!(p.count_ones(), a * b, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn exact_beats_stochastic_by_construction() {
        use crate::prob::Prob;
        use crate::rng::UniformSource;
        use crate::sng::Sng;
        // Deterministic product is bit-exact at the same total length a
        // stochastic product only approximates.
        let x = Fixed::new(11, 4).expect("in range");
        let y = Fixed::new(7, 4).expect("in range");
        let exact = exact_multiply(x, y).expect("valid operands");
        assert_eq!(exact.value(), (11.0 / 16.0) * (7.0 / 16.0));

        let mut a = Sng::new(UniformSource::seed_from_u64(1));
        let mut b = Sng::new(UniformSource::seed_from_u64(2));
        let sx = a.generate_prob(Prob::saturating(11.0 / 16.0), 256);
        let sy = b.generate_prob(Prob::saturating(7.0 / 16.0), 256);
        let stochastic = sx.and(&sy).expect("equal lengths");
        let exact_err = (exact.value() - (11.0 / 16.0) * (7.0 / 16.0)).abs();
        let sto_err = (stochastic.value() - (11.0 / 16.0) * (7.0 / 16.0)).abs();
        assert_eq!(exact_err, 0.0);
        assert!(sto_err > 0.0);
    }

    #[test]
    fn scaled_add_is_exact() {
        for (a, b) in [(0u64, 0u64), (15, 15), (3, 12), (8, 7)] {
            let s = exact_scaled_add(
                Fixed::new(a, 4).expect("in range"),
                Fixed::new(b, 4).expect("in range"),
            )
            .expect("equal widths");
            assert_eq!(s.count_ones(), a + b, "a={a} b={b}");
            assert_eq!(s.len(), 32);
        }
    }

    #[test]
    fn pairing_validation() {
        let empty = BitStream::zeros(0);
        assert!(repeat_whole(&empty, 2).is_err());
        assert!(hold_each(&empty, 2).is_err());
        let s = BitStream::ones(4);
        assert!(repeat_whole(&s, 0).is_err());
        assert!(hold_each(&s, 0).is_err());
        assert!(exact_scaled_add(
            Fixed::new(1, 3).expect("in range"),
            Fixed::new(1, 4).expect("in range")
        )
        .is_err());
    }

    #[test]
    fn pairings_preserve_value() {
        let s = BitStream::from_fn(8, |i| i % 3 == 0);
        let r = repeat_whole(&s, 5).expect("valid");
        let h = hold_each(&s, 5).expect("valid");
        assert!((r.value() - s.value()).abs() < 1e-12);
        assert!((h.value() - s.value()).abs() < 1e-12);
    }
}
