//! Stochastic arithmetic operations (the paper's Fig. 2 basic SC unit).
//!
//! | Operation | Logic | Input correlation | Result |
//! |---|---|---|---|
//! | [`multiply`] | AND | uncorrelated | `x·y` |
//! | [`scaled_add_mux`] | 2-to-1 MUX, `P(sel)=0.5` | uncorrelated | `(x+y)/2` |
//! | [`scaled_add_maj`] | 3-input majority | uncorrelated | `≈(x+y)/2` |
//! | [`approx_add`] | OR | uncorrelated, `x,y ∈ [0,0.5]` | `≈x+y` |
//! | [`abs_subtract`] | XOR | correlated | `\|x−y\|` |
//! | [`minimum`] | AND | correlated | `min(x,y)` |
//! | [`maximum`] | OR | correlated | `max(x,y)` |
//!
//! Division lives in [`crate::div`] (CORDIV). The MAJ variant of scaled
//! addition is the paper's CIM-friendly replacement for the MUX: a 3-input
//! majority is a single scouting-logic cycle, whereas a MUX needs a select
//! stream routed through peripheral logic.

use crate::bitstream::BitStream;
use crate::error::ScError;

/// SC multiplication: bitwise AND of two *uncorrelated* streams.
///
/// # Errors
///
/// Returns [`ScError::LengthMismatch`] if stream lengths differ.
///
/// # Example
///
/// ```
/// use sc_core::{ops, BitStream};
///
/// # fn main() -> Result<(), sc_core::ScError> {
/// let x = BitStream::from_fn(64, |i| i % 2 == 0); // 0.5
/// let y = BitStream::from_fn(64, |i| i % 4 < 2);  // 0.5, independent pattern
/// assert_eq!(ops::multiply(&x, &y)?.value(), 0.25);
/// # Ok(())
/// # }
/// ```
pub fn multiply(x: &BitStream, y: &BitStream) -> Result<BitStream, ScError> {
    x.and(y)
}

/// SC scaled addition `(x + y) / 2` via a 2-to-1 MUX with a select stream
/// of probability 0.5.
///
/// # Errors
///
/// Returns [`ScError::LengthMismatch`] if stream lengths differ.
pub fn scaled_add_mux(
    x: &BitStream,
    y: &BitStream,
    select: &BitStream,
) -> Result<BitStream, ScError> {
    x.mux(y, select)
}

/// CIM-friendly SC scaled addition: 3-input majority of `x`, `y`, and a
/// 0.5-probability select stream (single scouting-logic cycle).
///
/// For uncorrelated inputs, `P(maj) = ½(x + y)` exactly in expectation:
/// `maj(x,y,s) = xy + s(x ⊕ y)` and `E[s] = ½`.
///
/// # Errors
///
/// Returns [`ScError::LengthMismatch`] if stream lengths differ.
pub fn scaled_add_maj(
    x: &BitStream,
    y: &BitStream,
    select: &BitStream,
) -> Result<BitStream, ScError> {
    x.maj3(y, select)
}

/// SC approximate (unscaled) addition: bitwise OR.
///
/// Accurate when `x + y` stays well below 1 (the paper restricts inputs to
/// `[0, 0.5]`): `P(or) = x + y − xy`.
///
/// # Errors
///
/// Returns [`ScError::LengthMismatch`] if stream lengths differ.
pub fn approx_add(x: &BitStream, y: &BitStream) -> Result<BitStream, ScError> {
    x.or(y)
}

/// SC absolute subtraction `|x − y|`: bitwise XOR of *correlated* streams.
///
/// # Errors
///
/// Returns [`ScError::LengthMismatch`] if stream lengths differ.
pub fn abs_subtract(x: &BitStream, y: &BitStream) -> Result<BitStream, ScError> {
    x.xor(y)
}

/// SC minimum `min(x, y)`: bitwise AND of *correlated* streams.
///
/// # Errors
///
/// Returns [`ScError::LengthMismatch`] if stream lengths differ.
pub fn minimum(x: &BitStream, y: &BitStream) -> Result<BitStream, ScError> {
    x.and(y)
}

/// SC maximum `max(x, y)`: bitwise OR of *correlated* streams.
///
/// # Errors
///
/// Returns [`ScError::LengthMismatch`] if stream lengths differ.
pub fn maximum(x: &BitStream, y: &BitStream) -> Result<BitStream, ScError> {
    x.or(y)
}

/// Bitwise 4-to-1 MUX: selects among `inputs` with two select streams
/// (`s0` low bit, `s1` high bit) — the bilinear-interpolation kernel of the
/// paper's Fig. 3(b):
///
/// `out = (1−s1)(1−s0)·i0 + (1−s1)s0·i1 + s1(1−s0)·i2 + s1·s0·i3`.
///
/// # Errors
///
/// Returns [`ScError::LengthMismatch`] if any stream length differs from
/// `inputs[0]`.
pub fn mux4(
    inputs: &[&BitStream; 4],
    s0: &BitStream,
    s1: &BitStream,
) -> Result<BitStream, ScError> {
    let low0 = inputs[0].mux(inputs[1], &s0.not())?; // s0=0 -> i0, s0=1 -> i1
    let low1 = inputs[2].mux(inputs[3], &s0.not())?; // s0=0 -> i2, s0=1 -> i3
    low0.mux(&low1, &s1.not()) // s1=0 -> low0, s1=1 -> low1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prob::Prob;
    use crate::rng::UniformSource;
    use crate::sng::Sng;

    fn stream(p: f64, n: usize, seed: u64) -> BitStream {
        let mut sng = Sng::new(UniformSource::seed_from_u64(seed));
        sng.generate_prob(Prob::new(p).unwrap(), n)
    }

    #[test]
    fn multiply_uncorrelated() {
        let x = stream(0.6, 65536, 1);
        let y = stream(0.5, 65536, 2);
        let z = multiply(&x, &y).unwrap();
        assert!((z.value() - 0.3).abs() < 0.02, "{}", z.value());
    }

    #[test]
    fn scaled_add_mux_halves_sum() {
        let x = stream(0.8, 65536, 3);
        let y = stream(0.2, 65536, 4);
        let s = stream(0.5, 65536, 5);
        let z = scaled_add_mux(&x, &y, &s).unwrap();
        assert!((z.value() - 0.5).abs() < 0.02, "{}", z.value());
    }

    #[test]
    fn scaled_add_maj_matches_mux_in_expectation() {
        let x = stream(0.7, 65536, 6);
        let y = stream(0.1, 65536, 7);
        let s = stream(0.5, 65536, 8);
        let z = scaled_add_maj(&x, &y, &s).unwrap();
        assert!((z.value() - 0.4).abs() < 0.02, "{}", z.value());
    }

    #[test]
    fn approx_add_small_inputs() {
        let x = stream(0.2, 65536, 9);
        let y = stream(0.25, 65536, 10);
        let z = approx_add(&x, &y).unwrap();
        // OR gives x + y - xy = 0.4
        assert!((z.value() - 0.4).abs() < 0.02, "{}", z.value());
    }

    #[test]
    fn correlated_ops_via_shared_rng() {
        use crate::prob::Fixed;
        let mut sng = Sng::new(UniformSource::seed_from_u64(11));
        let (sx, sy) = sng
            .generate_correlated(Fixed::from_u8(200), Fixed::from_u8(80), 65536)
            .unwrap();
        let diff = abs_subtract(&sx, &sy).unwrap();
        assert!((diff.value() - 120.0 / 256.0).abs() < 0.02);
        let mn = minimum(&sx, &sy).unwrap();
        assert!((mn.value() - 80.0 / 256.0).abs() < 0.02);
        let mx = maximum(&sx, &sy).unwrap();
        assert!((mx.value() - 200.0 / 256.0).abs() < 0.02);
    }

    #[test]
    fn mux4_interpolates_four_inputs() {
        let n = 65536;
        let i0 = stream(0.0, n, 20);
        let i1 = stream(1.0, n, 21);
        let i2 = stream(1.0, n, 22);
        let i3 = stream(0.0, n, 23);
        let s0 = stream(0.25, n, 24);
        let s1 = stream(0.75, n, 25);
        let z = mux4(&[&i0, &i1, &i2, &i3], &s0, &s1).unwrap();
        // expected = (1-.75)(1-.25)*0 + (1-.75)(.25)*1 + (.75)(1-.25)*1 + (.75)(.25)*0
        let expect = 0.25 * 0.25 + 0.75 * 0.75;
        assert!((z.value() - expect).abs() < 0.02, "{}", z.value());
    }

    #[test]
    fn length_mismatch_propagates() {
        let x = BitStream::zeros(8);
        let y = BitStream::zeros(9);
        assert!(multiply(&x, &y).is_err());
        assert!(approx_add(&x, &y).is_err());
    }
}
