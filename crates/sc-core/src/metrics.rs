//! Accuracy-evaluation harness (the machinery behind Tables I and II).
//!
//! The paper reports MSE(%) of stochastic representations and operations
//! over 1,000,000 samples drawn uniformly from `[0, 1]`. [`MseEvaluator`]
//! reproduces that protocol for arbitrary unary and binary SC kernels.

use crate::bitstream::BitStream;
use crate::rng::Xoshiro256;

/// Mean squared error between paired estimates and references, as a
/// percentage (`100 × mean((est − ref)²)`), matching the paper's "MSE (%)"
/// convention.
///
/// Returns 0 for empty input.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn mse_percent(estimates: &[f64], references: &[f64]) -> f64 {
    assert_eq!(
        estimates.len(),
        references.len(),
        "estimate/reference length mismatch"
    );
    if estimates.is_empty() {
        return 0.0;
    }
    let sum: f64 = estimates
        .iter()
        .zip(references)
        .map(|(e, r)| (e - r) * (e - r))
        .sum();
    100.0 * sum / estimates.len() as f64
}

/// Mean absolute error between paired estimates and references.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn mae(estimates: &[f64], references: &[f64]) -> f64 {
    assert_eq!(estimates.len(), references.len());
    if estimates.is_empty() {
        return 0.0;
    }
    let sum: f64 = estimates
        .iter()
        .zip(references)
        .map(|(e, r)| (e - r).abs())
        .sum();
    sum / estimates.len() as f64
}

/// Root-mean-square error between paired estimates and references.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn rmse(estimates: &[f64], references: &[f64]) -> f64 {
    (mse_percent(estimates, references) / 100.0).sqrt()
}

/// Monte-Carlo MSE evaluator over uniformly sampled operands.
///
/// # Example
///
/// ```
/// use sc_core::metrics::MseEvaluator;
/// use sc_core::prelude::*;
///
/// // MSE of representing x with a 64-bit stream from a software RNG:
/// let eval = MseEvaluator::new(2000, 42);
/// let mse = eval.eval_unary(|x, trial| {
///     let mut sng = Sng::new(UniformSource::seed_from_u64(trial));
///     let s = sng.generate_prob(Prob::saturating(x), 64);
///     s.value()
/// }, |x| x);
/// assert!(mse > 0.1 && mse < 0.5); // ≈ 100/(6·64) ≈ 0.26
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MseEvaluator {
    samples: usize,
    seed: u64,
}

impl MseEvaluator {
    /// Creates an evaluator drawing `samples` uniform operands with the
    /// given seed (the paper uses 1,000,000 samples).
    #[must_use]
    pub fn new(samples: usize, seed: u64) -> Self {
        MseEvaluator { samples, seed }
    }

    /// Number of Monte-Carlo samples.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Evaluates a unary kernel: `estimate(x, trial)` against `exact(x)`
    /// for uniform `x`, returning MSE(%).
    pub fn eval_unary<E, X>(&self, mut estimate: E, exact: X) -> f64
    where
        E: FnMut(f64, u64) -> f64,
        X: Fn(f64) -> f64,
    {
        let mut rng = Xoshiro256::seed_from_u64(self.seed);
        let mut sum = 0.0;
        for trial in 0..self.samples {
            let x = rng.next_f64();
            let e = estimate(x, trial as u64);
            let r = exact(x);
            sum += (e - r) * (e - r);
        }
        100.0 * sum / self.samples as f64
    }

    /// Evaluates a binary kernel: `estimate(x, y, trial)` against
    /// `exact(x, y)` for uniform `(x, y)`, returning MSE(%).
    pub fn eval_binary<E, X>(&self, mut estimate: E, exact: X) -> f64
    where
        E: FnMut(f64, f64, u64) -> f64,
        X: Fn(f64, f64) -> f64,
    {
        let mut rng = Xoshiro256::seed_from_u64(self.seed);
        let mut sum = 0.0;
        for trial in 0..self.samples {
            let x = rng.next_f64();
            let y = rng.next_f64();
            let e = estimate(x, y, trial as u64);
            let r = exact(x, y);
            sum += (e - r) * (e - r);
        }
        100.0 * sum / self.samples as f64
    }

    /// Evaluates a binary kernel over a restricted operand range
    /// `[lo, hi]` (e.g. the paper's `[0, 0.5]` for OR-addition).
    pub fn eval_binary_in<E, X>(&self, lo: f64, hi: f64, mut estimate: E, exact: X) -> f64
    where
        E: FnMut(f64, f64, u64) -> f64,
        X: Fn(f64, f64) -> f64,
    {
        let mut rng = Xoshiro256::seed_from_u64(self.seed);
        let span = hi - lo;
        let mut sum = 0.0;
        for trial in 0..self.samples {
            let x = lo + span * rng.next_f64();
            let y = lo + span * rng.next_f64();
            let e = estimate(x, y, trial as u64);
            let r = exact(x, y);
            sum += (e - r) * (e - r);
        }
        100.0 * sum / self.samples as f64
    }
}

/// Convenience: the empirical value of a stream (`popcount / N`), exposed
/// here so metric call sites read symmetrically.
#[must_use]
pub fn stream_value(s: &BitStream) -> f64 {
    s.value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prob::Prob;
    use crate::rng::UniformSource;
    use crate::sng::Sng;

    #[test]
    fn mse_of_exact_estimates_is_zero() {
        let v = [0.1, 0.5, 0.9];
        assert_eq!(mse_percent(&v, &v), 0.0);
        assert_eq!(mae(&v, &v), 0.0);
    }

    #[test]
    fn mse_of_constant_offset() {
        let est = [0.2, 0.2, 0.2];
        let r = [0.1, 0.1, 0.1];
        assert!((mse_percent(&est, &r) - 1.0).abs() < 1e-12); // 100 * 0.01
        assert!((mae(&est, &r) - 0.1).abs() < 1e-12);
        assert!((rmse(&est, &r) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_yield_zero() {
        assert_eq!(mse_percent(&[], &[]), 0.0);
        assert_eq!(mae(&[], &[]), 0.0);
    }

    #[test]
    fn sampling_mse_matches_binomial_theory() {
        // Var(p̂) = p(1-p)/N; averaged over uniform p: 1/(6N).
        // For N = 128: MSE(%) ≈ 100/(6·128) ≈ 0.130.
        let n = 128usize;
        let eval = MseEvaluator::new(20_000, 7);
        let mse = eval.eval_unary(
            |x, trial| {
                let mut sng = Sng::new(UniformSource::seed_from_u64(trial * 2 + 1));
                sng.generate_prob(Prob::saturating(x), n).value()
            },
            |x| x,
        );
        let theory = 100.0 / (6.0 * n as f64);
        assert!(
            (mse - theory).abs() < theory * 0.15,
            "mse {mse} vs theory {theory}"
        );
    }

    #[test]
    fn binary_eval_multiplication_error_is_small_for_long_streams() {
        let eval = MseEvaluator::new(2_000, 13);
        let mse = eval.eval_binary(
            |x, y, trial| {
                let mut a = Sng::new(UniformSource::seed_from_u64(trial * 4 + 1));
                let mut b = Sng::new(UniformSource::seed_from_u64(trial * 4 + 2));
                let sx = a.generate_prob(Prob::saturating(x), 512);
                let sy = b.generate_prob(Prob::saturating(y), 512);
                sx.and(&sy).unwrap().value()
            },
            |x, y| x * y,
        );
        assert!(mse < 0.08, "mse {mse}");
    }

    #[test]
    fn restricted_range_eval() {
        let eval = MseEvaluator::new(1_000, 3);
        // Exact kernel on the restricted range has zero error.
        let mse = eval.eval_binary_in(0.0, 0.5, |x, y, _| x + y, |x, y| x + y);
        assert_eq!(mse, 0.0);
    }
}
