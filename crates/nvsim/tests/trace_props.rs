//! Property tests for the trace text format: `parse` inverts `to_text`
//! on arbitrary traces, and malformed input yields named [`SimError`]s
//! (never panics).

use nvsim::prelude::*;
use proptest::collection::vec;
use proptest::prelude::*;

/// Decodes one generated word into an arbitrary valid command, covering
/// every mnemonic including single-row scouts (complement / divide
/// operand sensing emit those).
fn decode(word: u64) -> Command {
    let bank = (word & 0x7) as usize;
    let row = ((word >> 3) & 0x3FF) as usize;
    let kind = match (word >> 13) % 7 {
        0 => CmdKind::Activate,
        1 => CmdKind::Precharge,
        2 => CmdKind::Read,
        3 => CmdKind::Write,
        4 => CmdKind::ScoutRead {
            rows: ((word >> 16) % 5 + 1) as u8,
        },
        5 => CmdKind::AdcSample,
        _ => CmdKind::CordivStep,
    };
    Command::new(bank, row, kind)
}

/// One malformed replacement line per failure class `parse` names.
const MANGLED: &[&str] = &[
    "x 1 RD",          // bad bank
    "0 y RD",          // bad row
    "0",               // missing row
    "0 1",             // missing op
    "0 1 NOPE",        // unknown op
    "0 1 SCOUT",       // missing row count
    "0 1 SCOUT x",     // bad row count
    "0 1 SCOUT 0",     // zero-row scout
    "0 1 RD trailing", // trailing tokens
];

proptest! {
    #[test]
    fn parse_inverts_to_text(words in vec(any::<u64>(), 0..256)) {
        let trace: Trace = words.iter().copied().map(decode).collect();
        let parsed = Trace::parse(&trace.to_text());
        prop_assert!(parsed.is_ok(), "round-trip rejected: {parsed:?}");
        prop_assert_eq!(parsed.unwrap(), trace);
    }

    #[test]
    fn mangled_line_is_a_named_error_at_its_line(
        words in vec(any::<u64>(), 1..64),
        pick in any::<u64>(),
        class in any::<u64>(),
    ) {
        let trace: Trace = words.iter().copied().map(decode).collect();
        let mut lines: Vec<String> =
            trace.to_text().lines().map(str::to_string).collect();
        let victim = (pick as usize) % lines.len();
        lines[victim] = MANGLED[(class as usize) % MANGLED.len()].to_string();
        let text = lines.join("\n");
        match Trace::parse(&text) {
            Err(SimError::ParseTrace { line, reason }) => {
                prop_assert_eq!(line, victim + 1);
                prop_assert!(!reason.is_empty());
            }
            other => prop_assert!(false, "expected ParseTrace, got {other:?}"),
        }
    }

    #[test]
    fn arbitrary_text_never_panics(bytes in vec(any::<u8>(), 0..512)) {
        // Printable-ASCII soup with injected newlines: parse must either
        // accept or fail with a ParseTrace, never panic or return a
        // different error variant.
        let text: String = bytes
            .iter()
            .map(|&b| if b % 13 == 0 { '\n' } else { char::from(b % 95 + 32) })
            .collect();
        match Trace::parse(&text) {
            Ok(_) | Err(SimError::ParseTrace { .. }) => {}
            other => prop_assert!(false, "unexpected result: {other:?}"),
        }
    }

    #[test]
    fn round_tripped_traces_replay_identically(words in vec(any::<u64>(), 1..128)) {
        let trace: Trace = words.iter().copied().map(decode).collect();
        let reparsed = Trace::parse(&trace.to_text()).expect("round-trip");
        let mut sim = Simulator::new(MemoryConfig::reram_default());
        let a = sim.run(&trace).expect("in-range by construction");
        let b = sim.run(&reparsed).expect("in-range by construction");
        prop_assert_eq!(a, b);
    }
}
