//! # nvsim — NVMain-style trace-driven memory timing & energy simulator
//!
//! The paper integrates scouting-logic latency/energy into NVMain 2.0 and
//! simulates command traces generated from the SC workloads (§IV). This
//! crate reproduces that substrate: a multi-bank nonvolatile memory with
//! row-buffer state, per-command timing windows, and energy accounting,
//! executed over explicit command [`trace`]s.
//!
//! * [`command`] — the command vocabulary (ACT/PRE/READ/WRITE plus the
//!   CIM extensions: multi-row scouting reads, ADC samples, CORDIV steps).
//! * [`timing`] / [`energy`] — parameter sets, with calibrated defaults
//!   matching the ReRAM substrate constants.
//! * [`bank`] — per-bank row-buffer state machines.
//! * [`sim`] — the trace executor producing [`stats::SimStats`].
//! * [`trace`] — trace construction and a line-oriented text format.
//!
//! # Example
//!
//! ```
//! use nvsim::prelude::*;
//!
//! # fn main() -> Result<(), nvsim::SimError> {
//! let mut trace = Trace::new();
//! trace.push(Command::new(0, 3, CmdKind::Write));
//! trace.push(Command::new(0, 4, CmdKind::Write));
//! trace.push(Command::new(0, 3, CmdKind::ScoutRead { rows: 2 }));
//! trace.push(Command::new(0, 0, CmdKind::AdcSample));
//!
//! let mut sim = Simulator::new(MemoryConfig::reram_default());
//! let stats = sim.run(&trace)?;
//! assert!(stats.total_time_ns > 0.0);
//! assert!(stats.total_energy_nj > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bank;
pub mod command;
pub mod energy;
pub mod error;
pub mod sim;
pub mod stats;
pub mod timing;
pub mod trace;

pub use command::{CmdKind, Command};
pub use error::SimError;
pub use sim::{MemoryConfig, Simulator};
pub use stats::SimStats;
pub use trace::Trace;

/// Convenient glob import.
pub mod prelude {
    pub use crate::command::{CmdKind, Command};
    pub use crate::energy::EnergyParams;
    pub use crate::error::SimError;
    pub use crate::sim::{MemoryConfig, Simulator};
    pub use crate::stats::SimStats;
    pub use crate::timing::TimingParams;
    pub use crate::trace::Trace;
}
