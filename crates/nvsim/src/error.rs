//! Simulator error types.

use std::fmt;

/// Errors produced by the memory simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A command addressed a bank beyond the configured bank count.
    BankOutOfRange {
        /// The offending bank index.
        bank: usize,
        /// Configured number of banks.
        banks: usize,
    },
    /// A command addressed a row beyond the configured rows per bank.
    RowOutOfRange {
        /// The offending row index.
        row: usize,
        /// Configured rows per bank.
        rows: usize,
    },
    /// A trace line could not be parsed.
    ParseTrace {
        /// 1-based line number.
        line: usize,
        /// Explanation of the failure.
        reason: String,
    },
    /// A configuration value was invalid (zero banks, zero rows, …).
    InvalidConfig(&'static str),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BankOutOfRange { bank, banks } => {
                write!(f, "bank {bank} out of range ({banks} banks configured)")
            }
            SimError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range ({rows} rows per bank)")
            }
            SimError::ParseTrace { line, reason } => {
                write!(f, "trace parse error at line {line}: {reason}")
            }
            SimError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::BankOutOfRange { bank: 8, banks: 4 };
        assert!(e.to_string().contains("bank 8"));
        let e = SimError::ParseTrace {
            line: 3,
            reason: "bad op".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }
}
