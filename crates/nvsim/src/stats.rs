//! Simulation statistics.

use std::collections::BTreeMap;
use std::fmt;

/// Per-bank execution statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BankStats {
    /// Serial sum of per-command latencies executed on this bank.
    pub busy_ns: f64,
    /// Row-buffer hits on this bank.
    pub row_hits: u64,
    /// Row-buffer misses on this bank.
    pub row_misses: u64,
}

/// Aggregate results of one trace execution.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimStats {
    /// End-to-end makespan in nanoseconds (banks execute in parallel;
    /// this is the time the last command retires).
    pub total_time_ns: f64,
    /// Total energy in nanojoules.
    pub total_energy_nj: f64,
    /// Serial sum of per-command latencies across all banks; equals
    /// `total_time_ns` when a single bank is used, exceeds it when
    /// bank parallelism overlaps commands.
    pub busy_ns: f64,
    /// Commands executed per mnemonic.
    pub command_counts: BTreeMap<&'static str, u64>,
    /// Row-buffer hits across banks.
    pub row_hits: u64,
    /// Row-buffer misses across banks.
    pub row_misses: u64,
    /// Per-bank breakdown (indexed by bank id, one entry per configured
    /// bank).
    pub per_bank: Vec<BankStats>,
}

impl SimStats {
    /// Total commands executed.
    #[must_use]
    pub fn total_commands(&self) -> u64 {
        self.command_counts.values().sum()
    }

    /// Number of banks that executed at least one command.
    #[must_use]
    pub fn banks_used(&self) -> usize {
        self.per_bank.iter().filter(|b| b.busy_ns > 0.0).count()
    }

    /// Throughput in commands per microsecond (0 for an empty run).
    #[must_use]
    pub fn commands_per_us(&self) -> f64 {
        if self.total_time_ns <= 0.0 {
            0.0
        } else {
            self.total_commands() as f64 / (self.total_time_ns / 1000.0)
        }
    }

    /// Average power in milliwatts (0 for an empty run).
    #[must_use]
    pub fn average_power_mw(&self) -> f64 {
        if self.total_time_ns <= 0.0 {
            0.0
        } else {
            // nJ / ns = W; scale to mW.
            self.total_energy_nj / self.total_time_ns * 1000.0
        }
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "time: {:.2} ns (busy {:.2} ns over {} banks), energy: {:.4} nJ, commands: {}",
            self.total_time_ns,
            self.busy_ns,
            self.banks_used(),
            self.total_energy_nj,
            self.total_commands()
        )?;
        for (mnemonic, count) in &self.command_counts {
            writeln!(f, "  {mnemonic:>8}: {count}")?;
        }
        write!(
            f,
            "  row-buffer: {} hits / {} misses",
            self.row_hits, self.row_misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut s = SimStats {
            total_time_ns: 1000.0,
            total_energy_nj: 5.0,
            ..SimStats::default()
        };
        s.command_counts.insert("RD", 10);
        s.command_counts.insert("WR", 10);
        assert_eq!(s.total_commands(), 20);
        assert!((s.commands_per_us() - 20.0).abs() < 1e-12);
        assert!((s.average_power_mw() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_well_defined() {
        let s = SimStats::default();
        assert_eq!(s.commands_per_us(), 0.0);
        assert_eq!(s.average_power_mw(), 0.0);
    }

    #[test]
    fn display_contains_sections() {
        let s = SimStats {
            total_time_ns: 10.0,
            total_energy_nj: 0.5,
            ..SimStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("time"));
        assert!(text.contains("row-buffer"));
    }
}
