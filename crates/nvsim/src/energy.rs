//! Energy parameters.

/// Per-command energy costs.
///
/// Row-granular costs are expressed per bit and multiplied by the
/// configured row width; fixed costs are per command.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Activation energy per command, nJ.
    pub e_activate_nj: f64,
    /// Precharge energy per command, nJ.
    pub e_precharge_nj: f64,
    /// Read energy per bit, pJ.
    pub e_read_bit_pj: f64,
    /// Write energy per bit (only changed cells draw programming energy;
    /// the simulator charges the full row conservatively), pJ.
    pub e_write_bit_pj: f64,
    /// Scouting sensing energy per bit per step, pJ.
    pub e_scout_bit_pj: f64,
    /// ADC energy per sample, nJ.
    pub e_adc_nj: f64,
    /// CORDIV periphery energy per step, pJ.
    pub e_cordiv_pj: f64,
}

impl EnergyParams {
    /// Calibrated ReRAM defaults (matching `reram::energy`).
    #[must_use]
    pub fn reram() -> Self {
        EnergyParams {
            e_activate_nj: 0.01,
            e_precharge_nj: 0.005,
            e_read_bit_pj: 0.2924,
            e_write_bit_pj: 1.663,
            e_scout_bit_pj: 0.2924,
            e_adc_nj: 0.04,
            e_cordiv_pj: 4.0,
        }
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams::reram()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_reram() {
        let e = EnergyParams::default();
        assert!((e.e_write_bit_pj - 1.663).abs() < 1e-9);
        assert!((e.e_scout_bit_pj - 0.2924).abs() < 1e-9);
    }
}
