//! Command traces and their line-oriented text format.
//!
//! Format: one command per line, `<bank> <row> <MNEMONIC> [args]`;
//! `#`-prefixed lines are comments. This mirrors the NVMain trace flow:
//! the architecture layer generates traces from SC workloads, and the
//! simulator replays them.

use crate::command::{CmdKind, Command};
use crate::error::SimError;

/// An ordered list of memory commands.
///
/// # Example
///
/// ```
/// use nvsim::prelude::*;
///
/// # fn main() -> Result<(), SimError> {
/// let mut t = Trace::new();
/// t.push(Command::new(0, 1, CmdKind::Write));
/// t.push(Command::new(0, 1, CmdKind::ScoutRead { rows: 2 }));
/// let text = t.to_text();
/// let parsed = Trace::parse(&text)?;
/// assert_eq!(parsed.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    commands: Vec<Command>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace {
            commands: Vec::new(),
        }
    }

    /// Appends a command.
    pub fn push(&mut self, cmd: Command) {
        self.commands.push(cmd);
    }

    /// Appends `n` copies of a command (bulk steps such as CORDIV).
    pub fn push_repeated(&mut self, cmd: Command, n: usize) {
        self.commands.extend(std::iter::repeat_n(cmd, n));
    }

    /// Number of commands.
    #[must_use]
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// The commands in order.
    #[must_use]
    pub fn commands(&self) -> &[Command] {
        &self.commands
    }

    /// Concatenates another trace onto this one.
    pub fn extend_from(&mut self, other: &Trace) {
        self.commands.extend_from_slice(&other.commands);
    }

    /// Serializes to the line format.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for c in &self.commands {
            out.push_str(&c.to_string());
            out.push('\n');
        }
        out
    }

    /// Writes the trace to a file in the line format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to_file<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Reads a trace from a file in the line format.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ParseTrace`] for malformed content; I/O
    /// failures are reported as a parse error at line 0.
    pub fn read_from_file<P: AsRef<std::path::Path>>(path: P) -> Result<Self, SimError> {
        let text = std::fs::read_to_string(path).map_err(|e| SimError::ParseTrace {
            line: 0,
            reason: format!("io error: {e}"),
        })?;
        Trace::parse(&text)
    }

    /// Parses the line format.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ParseTrace`] with the failing line number on
    /// malformed input.
    pub fn parse(text: &str) -> Result<Self, SimError> {
        let mut trace = Trace::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let err = |reason: &str| SimError::ParseTrace {
                line: i + 1,
                reason: reason.to_string(),
            };
            let bank: usize = parts
                .next()
                .ok_or_else(|| err("missing bank"))?
                .parse()
                .map_err(|_| err("bad bank"))?;
            let row: usize = parts
                .next()
                .ok_or_else(|| err("missing row"))?
                .parse()
                .map_err(|_| err("bad row"))?;
            let op = parts.next().ok_or_else(|| err("missing op"))?;
            let kind = match op {
                "ACT" => CmdKind::Activate,
                "PRE" => CmdKind::Precharge,
                "RD" => CmdKind::Read,
                "WR" => CmdKind::Write,
                "ADC" => CmdKind::AdcSample,
                "CORDIV" => CmdKind::CordivStep,
                "SCOUT" => {
                    let rows: u8 = parts
                        .next()
                        .ok_or_else(|| err("SCOUT needs a row count"))?
                        .parse()
                        .map_err(|_| err("bad SCOUT row count"))?;
                    // The engine emits single-row scouts for complement
                    // and divide operand sensing; only zero is malformed.
                    if rows == 0 {
                        return Err(err("SCOUT needs at least 1 row"));
                    }
                    CmdKind::ScoutRead { rows }
                }
                other => {
                    return Err(SimError::ParseTrace {
                        line: i + 1,
                        reason: format!("unknown op {other}"),
                    })
                }
            };
            if parts.next().is_some() {
                return Err(err("trailing tokens"));
            }
            trace.push(Command::new(bank, row, kind));
        }
        Ok(trace)
    }
}

impl FromIterator<Command> for Trace {
    fn from_iter<I: IntoIterator<Item = Command>>(iter: I) -> Self {
        Trace {
            commands: iter.into_iter().collect(),
        }
    }
}

impl Extend<Command> for Trace {
    fn extend<I: IntoIterator<Item = Command>>(&mut self, iter: I) {
        self.commands.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_text() {
        let mut t = Trace::new();
        t.push(Command::new(0, 1, CmdKind::Activate));
        t.push(Command::new(1, 2, CmdKind::ScoutRead { rows: 3 }));
        t.push(Command::new(0, 0, CmdKind::AdcSample));
        t.push(Command::new(2, 9, CmdKind::CordivStep));
        let parsed = Trace::parse(&t.to_text()).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let t = Trace::parse("# header\n\n0 1 RD\n  # indented comment\n0 2 WR\n").unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = Trace::parse("0 1 RD\n0 x WR\n").unwrap_err();
        assert!(matches!(e, SimError::ParseTrace { line: 2, .. }));
        let e = Trace::parse("0 1 BOGUS\n").unwrap_err();
        assert!(matches!(e, SimError::ParseTrace { line: 1, .. }));
        let e = Trace::parse("0 1 SCOUT 0\n").unwrap_err();
        assert!(matches!(e, SimError::ParseTrace { line: 1, .. }));
        // Single-row scouts are real commands (complement, divide
        // operand sensing) and must parse.
        let t = Trace::parse("0 1 SCOUT 1\n").unwrap();
        assert_eq!(t.len(), 1);
        let e = Trace::parse("0 1 RD extra\n").unwrap_err();
        assert!(matches!(e, SimError::ParseTrace { line: 1, .. }));
    }

    #[test]
    fn push_repeated_bulk() {
        let mut t = Trace::new();
        t.push_repeated(Command::new(0, 0, CmdKind::CordivStep), 256);
        assert_eq!(t.len(), 256);
    }

    #[test]
    fn file_round_trip() {
        let mut t = Trace::new();
        t.push(Command::new(0, 5, CmdKind::Write));
        t.push(Command::new(1, 2, CmdKind::ScoutRead { rows: 2 }));
        let path = std::env::temp_dir().join("nvsim_trace_roundtrip.txt");
        t.write_to_file(&path).expect("writable temp dir");
        let back = Trace::read_from_file(&path).expect("well-formed file");
        assert_eq!(back, t);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_a_parse_error() {
        let e = Trace::read_from_file("/nonexistent/trace.txt").unwrap_err();
        assert!(matches!(e, SimError::ParseTrace { line: 0, .. }));
    }
}
