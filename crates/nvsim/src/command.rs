//! The memory command vocabulary.
//!
//! Beyond the classic DRAM-style ACT/PRE/READ/WRITE, the CIM substrate
//! adds: multi-row scouting reads (one sensing step over `rows` activated
//! wordlines), ADC samples (stochastic→binary conversion), and CORDIV
//! steps (periphery latch updates during sequential division).

use std::fmt;

/// The kind of a memory command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmdKind {
    /// Activate (open) a row into the row buffer.
    Activate,
    /// Precharge (close) the open row.
    Precharge,
    /// Row-buffer read of the addressed row.
    Read,
    /// Row write (programming pulses on changed cells).
    Write,
    /// One scouting-logic sensing step over `rows` simultaneously
    /// activated wordlines (the addressed row is the first operand).
    ScoutRead {
        /// Number of simultaneously activated rows (2 or 3 in practice).
        rows: u8,
    },
    /// One ADC sample of the addressed bitline group.
    AdcSample,
    /// One CORDIV step in the periphery latches.
    CordivStep,
}

impl CmdKind {
    /// The trace-format mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmdKind::Activate => "ACT",
            CmdKind::Precharge => "PRE",
            CmdKind::Read => "RD",
            CmdKind::Write => "WR",
            CmdKind::ScoutRead { .. } => "SCOUT",
            CmdKind::AdcSample => "ADC",
            CmdKind::CordivStep => "CORDIV",
        }
    }
}

/// One addressed memory command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Command {
    /// Target bank.
    pub bank: usize,
    /// Target row within the bank.
    pub row: usize,
    /// Operation.
    pub kind: CmdKind,
}

impl Command {
    /// Creates a command.
    #[must_use]
    pub fn new(bank: usize, row: usize, kind: CmdKind) -> Self {
        Command { bank, row, kind }
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            CmdKind::ScoutRead { rows } => {
                write!(
                    f,
                    "{} {} {} {}",
                    self.bank,
                    self.row,
                    self.kind.mnemonic(),
                    rows
                )
            }
            _ => write!(f, "{} {} {}", self.bank, self.row, self.kind.mnemonic()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trip_format() {
        let c = Command::new(1, 42, CmdKind::ScoutRead { rows: 3 });
        assert_eq!(c.to_string(), "1 42 SCOUT 3");
        let c = Command::new(0, 7, CmdKind::Write);
        assert_eq!(c.to_string(), "0 7 WR");
    }

    #[test]
    fn mnemonics_are_distinct() {
        let kinds = [
            CmdKind::Activate,
            CmdKind::Precharge,
            CmdKind::Read,
            CmdKind::Write,
            CmdKind::ScoutRead { rows: 2 },
            CmdKind::AdcSample,
            CmdKind::CordivStep,
        ];
        let mut seen = std::collections::HashSet::new();
        for k in kinds {
            assert!(seen.insert(k.mnemonic()), "duplicate {}", k.mnemonic());
        }
    }
}
