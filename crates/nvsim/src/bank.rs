//! Per-bank row-buffer state machine.

/// The state of one memory bank: which row (if any) is open, when the
/// bank becomes free, and hit/miss statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BankState {
    open_row: Option<usize>,
    free_at_ns: f64,
    busy_ns: f64,
    row_hits: u64,
    row_misses: u64,
}

impl BankState {
    /// A precharged, idle bank at time zero.
    #[must_use]
    pub fn new() -> Self {
        BankState {
            open_row: None,
            free_at_ns: 0.0,
            busy_ns: 0.0,
            row_hits: 0,
            row_misses: 0,
        }
    }

    /// The currently open row.
    #[must_use]
    pub fn open_row(&self) -> Option<usize> {
        self.open_row
    }

    /// Absolute time at which the bank can accept the next command.
    #[must_use]
    pub fn free_at_ns(&self) -> f64 {
        self.free_at_ns
    }

    /// Total time this bank has spent executing commands (the serial sum
    /// of per-command latencies, as opposed to `free_at_ns` which is the
    /// wall-clock finish under bank parallelism).
    #[must_use]
    pub fn busy_ns(&self) -> f64 {
        self.busy_ns
    }

    /// Accounts `lat_ns` of command execution against this bank.
    pub fn add_busy(&mut self, lat_ns: f64) {
        self.busy_ns += lat_ns;
    }

    /// Row-buffer hits observed.
    #[must_use]
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }

    /// Row-buffer misses observed.
    #[must_use]
    pub fn row_misses(&self) -> u64 {
        self.row_misses
    }

    /// Ensures `row` is open at time `now`, returning the latency spent on
    /// precharge/activate (0 on a row hit) given the activation and
    /// precharge windows.
    pub fn open(&mut self, row: usize, t_rcd: f64, t_rp: f64) -> f64 {
        match self.open_row {
            Some(r) if r == row => {
                self.row_hits += 1;
                0.0
            }
            Some(_) => {
                self.row_misses += 1;
                self.open_row = Some(row);
                t_rp + t_rcd
            }
            None => {
                self.row_misses += 1;
                self.open_row = Some(row);
                t_rcd
            }
        }
    }

    /// Closes the open row.
    pub fn precharge(&mut self) {
        self.open_row = None;
    }

    /// Occupies the bank until `until_ns`.
    pub fn occupy_until(&mut self, until_ns: f64) {
        self.free_at_ns = self.free_at_ns.max(until_ns);
    }
}

impl Default for BankState {
    fn default() -> Self {
        BankState::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_is_a_miss() {
        let mut b = BankState::new();
        let lat = b.open(5, 10.0, 4.0);
        assert_eq!(lat, 10.0); // no precharge needed from idle
        assert_eq!(b.open_row(), Some(5));
        assert_eq!(b.row_misses(), 1);
    }

    #[test]
    fn repeated_access_hits() {
        let mut b = BankState::new();
        b.open(5, 10.0, 4.0);
        let lat = b.open(5, 10.0, 4.0);
        assert_eq!(lat, 0.0);
        assert_eq!(b.row_hits(), 1);
    }

    #[test]
    fn conflict_pays_precharge_plus_activate() {
        let mut b = BankState::new();
        b.open(5, 10.0, 4.0);
        let lat = b.open(9, 10.0, 4.0);
        assert_eq!(lat, 14.0);
        assert_eq!(b.open_row(), Some(9));
    }

    #[test]
    fn occupy_is_monotonic() {
        let mut b = BankState::new();
        b.occupy_until(50.0);
        b.occupy_until(20.0);
        assert_eq!(b.free_at_ns(), 50.0);
    }
}
