//! The trace executor.

use crate::bank::BankState;
use crate::command::{CmdKind, Command};
use crate::energy::EnergyParams;
use crate::error::SimError;
use crate::stats::SimStats;
use crate::timing::TimingParams;
use crate::trace::Trace;

/// Static configuration of the simulated memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryConfig {
    /// Number of independent banks (commands to different banks overlap).
    pub banks: usize,
    /// Rows per bank.
    pub rows_per_bank: usize,
    /// Row width in bits (scales per-bit energies).
    pub row_width_bits: usize,
    /// Timing parameters.
    pub timing: TimingParams,
    /// Energy parameters.
    pub energy: EnergyParams,
}

impl MemoryConfig {
    /// The calibrated ReRAM CIM configuration used throughout the
    /// reproduction: 8 banks × 1024 rows × 256-bit rows.
    #[must_use]
    pub fn reram_default() -> Self {
        MemoryConfig {
            banks: 8,
            rows_per_bank: 1024,
            row_width_bits: 256,
            timing: TimingParams::reram(),
            energy: EnergyParams::reram(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] on zero-sized dimensions.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.banks == 0 {
            return Err(SimError::InvalidConfig("banks must be nonzero"));
        }
        if self.rows_per_bank == 0 {
            return Err(SimError::InvalidConfig("rows_per_bank must be nonzero"));
        }
        if self.row_width_bits == 0 {
            return Err(SimError::InvalidConfig("row_width_bits must be nonzero"));
        }
        Ok(())
    }
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig::reram_default()
    }
}

/// Executes traces against a bank-parallel memory model.
///
/// Commands are issued in trace order; each occupies only its target
/// bank, so commands to different banks overlap in time (the paper's
/// multi-array pipelining). Row-buffer state adds activate/precharge
/// latency on row switches.
///
/// Two driving styles are supported: [`Simulator::run`] executes a
/// complete [`Trace`] in one call, while [`Simulator::begin`] /
/// [`Simulator::feed`] / [`Simulator::finish`] stream commands
/// incrementally so callers can replay arbitrarily long schedules
/// without materializing them.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: MemoryConfig,
    banks: Vec<BankState>,
    partial: SimStats,
}

impl Simulator {
    /// Creates a simulator for the given configuration.
    #[must_use]
    pub fn new(config: MemoryConfig) -> Self {
        Simulator {
            banks: vec![BankState::new(); config.banks.max(1)],
            config,
            partial: SimStats::default(),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Resets all bank state (a fresh run).
    pub fn reset(&mut self) {
        self.banks = vec![BankState::new(); self.config.banks];
        self.partial = SimStats::default();
    }

    /// Starts a fresh incremental replay session.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration is
    /// malformed.
    pub fn begin(&mut self) -> Result<(), SimError> {
        self.config.validate()?;
        self.reset();
        Ok(())
    }

    /// Feeds a batch of commands into the current session. Statistics
    /// accumulate internally until [`Simulator::finish`] is called.
    ///
    /// # Errors
    ///
    /// * [`SimError::BankOutOfRange`] / [`SimError::RowOutOfRange`] — a
    ///   command addresses outside the configured geometry. State up to
    ///   the offending command is retained.
    pub fn feed(&mut self, commands: &[Command]) -> Result<(), SimError> {
        let width = self.config.row_width_bits as f64;
        let t = self.config.timing;
        let e = self.config.energy;

        for cmd in commands {
            let Command { bank, row, kind } = *cmd;
            if bank >= self.config.banks {
                return Err(SimError::BankOutOfRange {
                    bank,
                    banks: self.config.banks,
                });
            }
            if row >= self.config.rows_per_bank {
                return Err(SimError::RowOutOfRange {
                    row,
                    rows: self.config.rows_per_bank,
                });
            }
            let state = &mut self.banks[bank];
            let start = state.free_at_ns();
            let (latency, energy_nj) = match kind {
                CmdKind::Activate => {
                    let lat = state.open(row, t.t_rcd, t.t_rp);
                    (lat, e.e_activate_nj)
                }
                CmdKind::Precharge => {
                    state.precharge();
                    (t.t_rp, e.e_precharge_nj)
                }
                CmdKind::Read => {
                    let open_lat = state.open(row, t.t_rcd, t.t_rp);
                    (
                        open_lat + t.t_read,
                        e.e_activate_nj + width * e.e_read_bit_pj / 1000.0,
                    )
                }
                CmdKind::Write => {
                    let open_lat = state.open(row, t.t_rcd, t.t_rp);
                    (
                        open_lat + t.t_write,
                        e.e_activate_nj + width * e.e_write_bit_pj / 1000.0,
                    )
                }
                CmdKind::ScoutRead { rows } => {
                    // A multi-row sensing step asserts every operand
                    // wordline, anchored at the command row. Re-asserting
                    // the same anchor row back-to-back keeps its wordline
                    // group latched — a row-buffer hit; switching anchors
                    // pays the activate/precharge window like any access.
                    let open_lat = state.open(row, t.t_rcd, t.t_rp);
                    (
                        open_lat + t.t_scout,
                        f64::from(rows) * e.e_activate_nj + width * e.e_scout_bit_pj / 1000.0,
                    )
                }
                CmdKind::AdcSample => (t.t_adc, e.e_adc_nj),
                CmdKind::CordivStep => (t.t_cordiv, e.e_cordiv_pj / 1000.0),
            };
            let finish = start + latency;
            state.occupy_until(finish);
            state.add_busy(latency);
            self.partial.total_time_ns = self.partial.total_time_ns.max(finish);
            self.partial.total_energy_nj += energy_nj;
            *self
                .partial
                .command_counts
                .entry(kind.mnemonic())
                .or_insert(0) += 1;
        }
        Ok(())
    }

    /// Closes the current session, returning aggregate statistics (and
    /// resetting internal accumulators for the next session).
    pub fn finish(&mut self) -> SimStats {
        let mut stats = std::mem::take(&mut self.partial);
        stats.per_bank = self
            .banks
            .iter()
            .map(|b| crate::stats::BankStats {
                busy_ns: b.busy_ns(),
                row_hits: b.row_hits(),
                row_misses: b.row_misses(),
            })
            .collect();
        stats.busy_ns = stats.per_bank.iter().map(|b| b.busy_ns).sum();
        stats.row_hits = stats.per_bank.iter().map(|b| b.row_hits).sum();
        stats.row_misses = stats.per_bank.iter().map(|b| b.row_misses).sum();
        stats
    }

    /// Executes a trace, returning aggregate statistics.
    ///
    /// # Errors
    ///
    /// * [`SimError::InvalidConfig`] — the configuration is malformed.
    /// * [`SimError::BankOutOfRange`] / [`SimError::RowOutOfRange`] — a
    ///   command addresses outside the configured geometry.
    pub fn run(&mut self, trace: &Trace) -> Result<SimStats, SimError> {
        self.begin()?;
        self.feed(trace.commands())?;
        Ok(self.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MemoryConfig {
        MemoryConfig::reram_default()
    }

    #[test]
    fn empty_trace_is_zero_cost() {
        let mut sim = Simulator::new(config());
        let stats = sim.run(&Trace::new()).unwrap();
        assert_eq!(stats.total_time_ns, 0.0);
        assert_eq!(stats.total_energy_nj, 0.0);
    }

    #[test]
    fn single_bank_commands_serialize() {
        let mut sim = Simulator::new(config());
        let mut t = Trace::new();
        t.push(Command::new(0, 0, CmdKind::Write));
        t.push(Command::new(0, 0, CmdKind::Write));
        let stats = sim.run(&t).unwrap();
        // First write pays the activation; second hits the open row.
        let expect = config().timing.t_rcd + 2.0 * config().timing.t_write;
        assert!((stats.total_time_ns - expect).abs() < 1e-9);
        assert_eq!(stats.row_hits, 1);
        assert_eq!(stats.row_misses, 1);
    }

    #[test]
    fn different_banks_overlap() {
        let mut sim = Simulator::new(config());
        let mut serial = Trace::new();
        serial.push(Command::new(0, 0, CmdKind::Write));
        serial.push(Command::new(0, 1, CmdKind::Write));
        let t_serial = sim.run(&serial).unwrap().total_time_ns;

        let mut parallel = Trace::new();
        parallel.push(Command::new(0, 0, CmdKind::Write));
        parallel.push(Command::new(1, 0, CmdKind::Write));
        let t_parallel = sim.run(&parallel).unwrap().total_time_ns;
        assert!(t_parallel < t_serial, "{t_parallel} vs {t_serial}");
    }

    #[test]
    fn scout_read_pays_activation_then_hits() {
        let mut sim = Simulator::new(config());
        let mut t = Trace::new();
        t.push(Command::new(0, 7, CmdKind::ScoutRead { rows: 3 }));
        t.push(Command::new(0, 7, CmdKind::ScoutRead { rows: 3 }));
        let stats = sim.run(&t).unwrap();
        // First scout activates the anchor row; the second re-asserts the
        // same wordline group and is a pure sensing step.
        let expect = config().timing.t_rcd + 2.0 * config().timing.t_scout;
        assert!((stats.total_time_ns - expect).abs() < 1e-9);
        assert_eq!(stats.row_hits, 1);
        assert_eq!(stats.row_misses, 1);
    }

    #[test]
    fn incremental_feed_matches_one_shot_run() {
        let mut t = Trace::new();
        t.push(Command::new(0, 0, CmdKind::Write));
        t.push(Command::new(1, 3, CmdKind::ScoutRead { rows: 2 }));
        t.push(Command::new(0, 0, CmdKind::AdcSample));
        t.push(Command::new(1, 3, CmdKind::ScoutRead { rows: 2 }));

        let mut sim = Simulator::new(config());
        let one_shot = sim.run(&t).unwrap();

        let mut sim = Simulator::new(config());
        sim.begin().unwrap();
        for chunk in t.commands().chunks(1) {
            sim.feed(chunk).unwrap();
        }
        let streamed = sim.finish();
        assert_eq!(one_shot, streamed);
    }

    #[test]
    fn per_bank_stats_split_by_bank() {
        let mut sim = Simulator::new(config());
        let mut t = Trace::new();
        t.push(Command::new(0, 0, CmdKind::Write));
        t.push(Command::new(2, 0, CmdKind::Write));
        t.push(Command::new(2, 0, CmdKind::Write));
        let stats = sim.run(&t).unwrap();
        assert_eq!(stats.per_bank.len(), config().banks);
        assert_eq!(stats.banks_used(), 2);
        assert!(stats.per_bank[2].busy_ns > stats.per_bank[0].busy_ns);
        assert_eq!(stats.per_bank[2].row_hits, 1);
        // Serial busy sum exceeds the bank-parallel makespan here.
        assert!(stats.busy_ns > stats.total_time_ns);
        let bank_sum: f64 = stats.per_bank.iter().map(|b| b.busy_ns).sum();
        assert!((stats.busy_ns - bank_sum).abs() < 1e-9);
    }

    #[test]
    fn addressing_is_validated() {
        let mut sim = Simulator::new(config());
        let mut t = Trace::new();
        t.push(Command::new(99, 0, CmdKind::Read));
        assert!(matches!(sim.run(&t), Err(SimError::BankOutOfRange { .. })));
        let mut t = Trace::new();
        t.push(Command::new(0, 99_999, CmdKind::Read));
        assert!(matches!(sim.run(&t), Err(SimError::RowOutOfRange { .. })));
    }

    #[test]
    fn energy_accumulates_per_command() {
        let mut sim = Simulator::new(config());
        let mut t = Trace::new();
        t.push(Command::new(0, 0, CmdKind::AdcSample));
        t.push(Command::new(0, 0, CmdKind::AdcSample));
        let stats = sim.run(&t).unwrap();
        assert!((stats.total_energy_nj - 2.0 * config().energy.e_adc_nj).abs() < 1e-12);
    }

    #[test]
    fn run_resets_state() {
        let mut sim = Simulator::new(config());
        let mut t = Trace::new();
        t.push(Command::new(0, 0, CmdKind::Write));
        let a = sim.run(&t).unwrap();
        let b = sim.run(&t).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cordiv_steps_dominate_division_latency() {
        let mut sim = Simulator::new(config());
        let mut t = Trace::new();
        t.push_repeated(Command::new(0, 0, CmdKind::CordivStep), 256);
        let stats = sim.run(&t).unwrap();
        assert!((stats.total_time_ns - 256.0 * config().timing.t_cordiv).abs() < 1e-6);
    }
}
