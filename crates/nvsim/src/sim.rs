//! The trace executor.

use crate::bank::BankState;
use crate::command::{CmdKind, Command};
use crate::energy::EnergyParams;
use crate::error::SimError;
use crate::stats::SimStats;
use crate::timing::TimingParams;
use crate::trace::Trace;

/// Static configuration of the simulated memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryConfig {
    /// Number of independent banks (commands to different banks overlap).
    pub banks: usize,
    /// Rows per bank.
    pub rows_per_bank: usize,
    /// Row width in bits (scales per-bit energies).
    pub row_width_bits: usize,
    /// Timing parameters.
    pub timing: TimingParams,
    /// Energy parameters.
    pub energy: EnergyParams,
}

impl MemoryConfig {
    /// The calibrated ReRAM CIM configuration used throughout the
    /// reproduction: 8 banks × 1024 rows × 256-bit rows.
    #[must_use]
    pub fn reram_default() -> Self {
        MemoryConfig {
            banks: 8,
            rows_per_bank: 1024,
            row_width_bits: 256,
            timing: TimingParams::reram(),
            energy: EnergyParams::reram(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] on zero-sized dimensions.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.banks == 0 {
            return Err(SimError::InvalidConfig("banks must be nonzero"));
        }
        if self.rows_per_bank == 0 {
            return Err(SimError::InvalidConfig("rows_per_bank must be nonzero"));
        }
        if self.row_width_bits == 0 {
            return Err(SimError::InvalidConfig("row_width_bits must be nonzero"));
        }
        Ok(())
    }
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig::reram_default()
    }
}

/// Executes traces against a bank-parallel memory model.
///
/// Commands are issued in trace order; each occupies only its target
/// bank, so commands to different banks overlap in time (the paper's
/// multi-array pipelining). Row-buffer state adds activate/precharge
/// latency on row switches.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: MemoryConfig,
    banks: Vec<BankState>,
}

impl Simulator {
    /// Creates a simulator for the given configuration.
    #[must_use]
    pub fn new(config: MemoryConfig) -> Self {
        Simulator {
            banks: vec![BankState::new(); config.banks.max(1)],
            config,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Resets all bank state (a fresh run).
    pub fn reset(&mut self) {
        self.banks = vec![BankState::new(); self.config.banks];
    }

    /// Executes a trace, returning aggregate statistics.
    ///
    /// # Errors
    ///
    /// * [`SimError::InvalidConfig`] — the configuration is malformed.
    /// * [`SimError::BankOutOfRange`] / [`SimError::RowOutOfRange`] — a
    ///   command addresses outside the configured geometry.
    pub fn run(&mut self, trace: &Trace) -> Result<SimStats, SimError> {
        self.config.validate()?;
        self.reset();
        let mut stats = SimStats::default();
        let width = self.config.row_width_bits as f64;
        let t = self.config.timing;
        let e = self.config.energy;

        for cmd in trace.commands() {
            let Command { bank, row, kind } = *cmd;
            if bank >= self.config.banks {
                return Err(SimError::BankOutOfRange {
                    bank,
                    banks: self.config.banks,
                });
            }
            if row >= self.config.rows_per_bank {
                return Err(SimError::RowOutOfRange {
                    row,
                    rows: self.config.rows_per_bank,
                });
            }
            let state = &mut self.banks[bank];
            let start = state.free_at_ns();
            let (latency, energy_nj) = match kind {
                CmdKind::Activate => {
                    let lat = state.open(row, t.t_rcd, t.t_rp);
                    (lat, e.e_activate_nj)
                }
                CmdKind::Precharge => {
                    state.precharge();
                    (t.t_rp, e.e_precharge_nj)
                }
                CmdKind::Read => {
                    let open_lat = state.open(row, t.t_rcd, t.t_rp);
                    (
                        open_lat + t.t_read,
                        e.e_activate_nj + width * e.e_read_bit_pj / 1000.0,
                    )
                }
                CmdKind::Write => {
                    let open_lat = state.open(row, t.t_rcd, t.t_rp);
                    (
                        open_lat + t.t_write,
                        e.e_activate_nj + width * e.e_write_bit_pj / 1000.0,
                    )
                }
                CmdKind::ScoutRead { rows } => {
                    // Multi-row activation bypasses the row buffer; all
                    // operand rows are asserted for one sensing step.
                    state.precharge();
                    (
                        t.t_scout,
                        f64::from(rows) * e.e_activate_nj + width * e.e_scout_bit_pj / 1000.0,
                    )
                }
                CmdKind::AdcSample => (t.t_adc, e.e_adc_nj),
                CmdKind::CordivStep => (t.t_cordiv, e.e_cordiv_pj / 1000.0),
            };
            let finish = start + latency;
            state.occupy_until(finish);
            stats.total_time_ns = stats.total_time_ns.max(finish);
            stats.total_energy_nj += energy_nj;
            *stats.command_counts.entry(kind.mnemonic()).or_insert(0) += 1;
        }
        stats.row_hits = self.banks.iter().map(BankState::row_hits).sum();
        stats.row_misses = self.banks.iter().map(BankState::row_misses).sum();
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MemoryConfig {
        MemoryConfig::reram_default()
    }

    #[test]
    fn empty_trace_is_zero_cost() {
        let mut sim = Simulator::new(config());
        let stats = sim.run(&Trace::new()).unwrap();
        assert_eq!(stats.total_time_ns, 0.0);
        assert_eq!(stats.total_energy_nj, 0.0);
    }

    #[test]
    fn single_bank_commands_serialize() {
        let mut sim = Simulator::new(config());
        let mut t = Trace::new();
        t.push(Command::new(0, 0, CmdKind::Write));
        t.push(Command::new(0, 0, CmdKind::Write));
        let stats = sim.run(&t).unwrap();
        // First write pays the activation; second hits the open row.
        let expect = config().timing.t_rcd + 2.0 * config().timing.t_write;
        assert!((stats.total_time_ns - expect).abs() < 1e-9);
        assert_eq!(stats.row_hits, 1);
        assert_eq!(stats.row_misses, 1);
    }

    #[test]
    fn different_banks_overlap() {
        let mut sim = Simulator::new(config());
        let mut serial = Trace::new();
        serial.push(Command::new(0, 0, CmdKind::Write));
        serial.push(Command::new(0, 1, CmdKind::Write));
        let t_serial = sim.run(&serial).unwrap().total_time_ns;

        let mut parallel = Trace::new();
        parallel.push(Command::new(0, 0, CmdKind::Write));
        parallel.push(Command::new(1, 0, CmdKind::Write));
        let t_parallel = sim.run(&parallel).unwrap().total_time_ns;
        assert!(t_parallel < t_serial, "{t_parallel} vs {t_serial}");
    }

    #[test]
    fn scout_read_is_single_step() {
        let mut sim = Simulator::new(config());
        let mut t = Trace::new();
        t.push(Command::new(0, 0, CmdKind::ScoutRead { rows: 3 }));
        let stats = sim.run(&t).unwrap();
        assert!((stats.total_time_ns - config().timing.t_scout).abs() < 1e-9);
    }

    #[test]
    fn addressing_is_validated() {
        let mut sim = Simulator::new(config());
        let mut t = Trace::new();
        t.push(Command::new(99, 0, CmdKind::Read));
        assert!(matches!(sim.run(&t), Err(SimError::BankOutOfRange { .. })));
        let mut t = Trace::new();
        t.push(Command::new(0, 99_999, CmdKind::Read));
        assert!(matches!(sim.run(&t), Err(SimError::RowOutOfRange { .. })));
    }

    #[test]
    fn energy_accumulates_per_command() {
        let mut sim = Simulator::new(config());
        let mut t = Trace::new();
        t.push(Command::new(0, 0, CmdKind::AdcSample));
        t.push(Command::new(0, 0, CmdKind::AdcSample));
        let stats = sim.run(&t).unwrap();
        assert!((stats.total_energy_nj - 2.0 * config().energy.e_adc_nj).abs() < 1e-12);
    }

    #[test]
    fn run_resets_state() {
        let mut sim = Simulator::new(config());
        let mut t = Trace::new();
        t.push(Command::new(0, 0, CmdKind::Write));
        let a = sim.run(&t).unwrap();
        let b = sim.run(&t).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cordiv_steps_dominate_division_latency() {
        let mut sim = Simulator::new(config());
        let mut t = Trace::new();
        t.push_repeated(Command::new(0, 0, CmdKind::CordivStep), 256);
        let stats = sim.run(&t).unwrap();
        assert!((stats.total_time_ns - 256.0 * config().timing.t_cordiv).abs() < 1e-6);
    }
}
