//! Timing parameters (nanoseconds).

/// Per-command timing windows in nanoseconds.
///
/// Defaults are calibrated to the ReRAM substrate constants used across
/// the workspace (see `reram::energy`): scouting sensing 1.955 ns, row
/// write 19.825 ns, ADC sample 0.645 ns, CORDIV step 48.692 ns, with
/// DRAM-comparable activate/precharge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingParams {
    /// Row activation (ACT → accessible), ns.
    pub t_rcd: f64,
    /// Precharge, ns.
    pub t_rp: f64,
    /// Row-buffer read, ns.
    pub t_read: f64,
    /// Row write (programming), ns.
    pub t_write: f64,
    /// One scouting-logic sensing step, ns.
    pub t_scout: f64,
    /// One ADC sample, ns.
    pub t_adc: f64,
    /// One CORDIV periphery step, ns.
    pub t_cordiv: f64,
}

impl TimingParams {
    /// Calibrated ReRAM defaults.
    #[must_use]
    pub fn reram() -> Self {
        TimingParams {
            t_rcd: 5.0,
            t_rp: 3.0,
            t_read: 1.955,
            t_write: 19.825,
            t_scout: 1.955,
            t_adc: 0.645,
            t_cordiv: 48.692,
        }
    }

    /// DRAM-like parameters (for data-movement baselines).
    #[must_use]
    pub fn dram() -> Self {
        TimingParams {
            t_rcd: 13.75,
            t_rp: 13.75,
            t_read: 5.0,
            t_write: 5.0,
            t_scout: f64::INFINITY, // DRAM cannot scout-read
            t_adc: f64::INFINITY,
            t_cordiv: f64::INFINITY,
        }
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::reram()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reram_matches_substrate_constants() {
        let t = TimingParams::reram();
        assert!((t.t_scout - 1.955).abs() < 1e-9);
        assert!((t.t_write - 19.825).abs() < 1e-9);
        assert!((t.t_adc - 0.645).abs() < 1e-9);
    }

    #[test]
    fn dram_cannot_compute_in_memory() {
        assert!(TimingParams::dram().t_scout.is_infinite());
    }
}
