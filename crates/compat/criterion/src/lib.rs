//! A minimal, dependency-free subset of the `criterion` API.
//!
//! The workspace builds in hermetic environments with no crates registry,
//! so the benchmarking surface the `bench` crate uses is provided in-repo:
//! [`Criterion`], [`criterion_group!`], [`criterion_main!`], benchmark
//! groups with `sample_size`, and timed `bench_function`/`iter`.
//!
//! Measurements are real wall-clock timings: each benchmark is warmed up,
//! then run for `sample_size` samples (auto-calibrated iteration counts
//! per sample), and the median/mean/min per-iteration times are reported
//! on stdout. When the `CRITERION_JSON` environment variable names a file,
//! every completed benchmark appends a JSON record there so harnesses can
//! collect machine-readable results (see `BENCH_engine.json`).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measuring time per benchmark (split across samples).
const TARGET_MEASURE: Duration = Duration::from_millis(300);
/// Warm-up time before sampling.
const WARMUP: Duration = Duration::from_millis(60);

/// One measured benchmark result.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Full benchmark id (`group/name` or bare name).
    pub id: String,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// Mean per-iteration time in nanoseconds.
    pub mean_ns: f64,
    /// Fastest sample in nanoseconds.
    pub min_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

impl Sample {
    fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"id\":\"{}\",\"median_ns\":{:.1},\"mean_ns\":{:.1},\"min_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{}}}",
            self.id.replace('"', "'"),
            self.median_ns,
            self.mean_ns,
            self.min_ns,
            self.samples,
            self.iters_per_sample
        );
        s
    }
}

fn emit(sample: &Sample) {
    println!(
        "bench {:<56} median {:>12}  mean {:>12}  ({} samples x {} iters)",
        sample.id,
        format_ns(sample.median_ns),
        format_ns(sample.mean_ns),
        sample.samples,
        sample.iters_per_sample
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            use std::io::Write;
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                let _ = writeln!(f, "{}", sample.to_json());
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The benchmark runner handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<I: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        run_benchmark(id.into(), 20, f);
        self
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one named benchmark in this group.
    pub fn bench_function<I: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        run_benchmark(format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// Finishes the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    /// Iterations requested in measure mode.
    iters: u64,
    /// Measured elapsed time for the routine body.
    elapsed: Duration,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    Calibrate,
    Measure,
}

impl Bencher {
    /// Times `routine`, storing the elapsed wall-clock duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let iters = match self.mode {
            Mode::Calibrate => 1,
            Mode::Measure => self.iters,
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: String, sample_size: usize, mut f: F) {
    // Calibrate: how long does one iteration take?
    let mut b = Bencher {
        mode: Mode::Calibrate,
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mut per_iter = b.elapsed.max(Duration::from_nanos(1));

    // Warm up for a fixed budget, refining the per-iteration estimate.
    let warm_start = Instant::now();
    while warm_start.elapsed() < WARMUP {
        f(&mut b);
        per_iter = (per_iter + b.elapsed.max(Duration::from_nanos(1))) / 2;
    }

    // Choose iterations per sample so the whole run hits TARGET_MEASURE.
    let budget_per_sample = TARGET_MEASURE.as_nanos() / sample_size.max(1) as u128;
    let iters = (budget_per_sample / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut times_ns: Vec<f64> = Vec::with_capacity(sample_size);
    let mut m = Bencher {
        mode: Mode::Measure,
        iters,
        elapsed: Duration::ZERO,
    };
    for _ in 0..sample_size {
        f(&mut m);
        times_ns.push(m.elapsed.as_nanos() as f64 / iters as f64);
    }
    times_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = times_ns[times_ns.len() / 2];
    let mean = times_ns.iter().sum::<f64>() / times_ns.len() as f64;
    emit(&Sample {
        id,
        median_ns: median,
        mean_ns: mean,
        min_ns: times_ns[0],
        samples: sample_size,
        iters_per_sample: iters,
    });
}

/// Declares a benchmark group function (subset of criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark main function.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
