//! A minimal, dependency-free subset of the `proptest` API.
//!
//! This workspace builds in hermetic environments with no access to a
//! crates registry, so the property-testing surface the test-suite uses is
//! provided in-repo: the [`proptest!`] macro, `prop_assert*` macros,
//! [`any`], integer-range and [`collection::vec`] strategies.
//!
//! Semantics intentionally kept from the real crate:
//!
//! * each property runs over many generated cases (default 64, override
//!   with `PROPTEST_CASES`),
//! * generation is deterministic per test name (override the seed with
//!   `PROPTEST_SEED` to explore different cases),
//! * `prop_assert!`/`prop_assert_eq!` report the failing case values.
//!
//! Shrinking is not implemented — failures report the raw generated case.

use std::fmt;

/// Default number of generated cases per property.
pub const DEFAULT_CASES: u32 = 64;

/// Returns the configured case count (`PROPTEST_CASES` env override).
#[must_use]
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

/// A failed or rejected test case, carried through the property body.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed with the given message.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should be skipped.
    Reject(String),
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
        }
    }
}

/// Deterministic test RNG (splitmix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG deterministically from a test name, honouring the
    /// `PROPTEST_SEED` environment override.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let base: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x5EED_CAFE_F00D_D00D);
        let mut h = base;
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value below `bound` (`bound = 0` yields 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Generates any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A `Vec` strategy with element strategy `S` and a length range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generates vectors whose length falls in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::sample(&self.len, rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Constant strategy (`Just`).
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Per-block configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases each property in the block runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: cases() }
    }
}

/// The common imports of the real crate's prelude.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Declares deterministic property tests (subset of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $(#[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            #[test]
            fn $name() {
                let rng = $crate::TestRng::for_test(stringify!($name));
                let cases = ($cfg).cases;
                $crate::__proptest_case_loop!(rng, cases, $name, ($($arg in $strat),+), $body);
            }
        )+
    };
    ($(#[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            #[test]
            fn $name() {
                let rng = $crate::TestRng::for_test(stringify!($name));
                let cases = $crate::cases();
                $crate::__proptest_case_loop!(rng, cases, $name, ($($arg in $strat),+), $body);
            }
        )+
    };
}

/// Internal: runs the generated-case loop for one property.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case_loop {
    ($rng:ident, $cases:ident, $name:ident, ($($arg:ident in $strat:expr),+), $body:block) => {{
        let mut rng = $rng;
        let cases = $cases;
        for case in 0..cases {
            $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
            let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                (|| { $body Ok(()) })();
            match outcome {
                Ok(()) | Err($crate::TestCaseError::Reject(_)) => {}
                Err($crate::TestCaseError::Fail(msg)) => {
                    panic!(
                        "property {} failed at case {case}/{cases}: {msg}\n  inputs: {}",
                        stringify!($name),
                        [$(format!("{} = {:?}", stringify!($arg), &$arg)),+].join(", "),
                    );
                }
            }
        }
    }};
}

/// `assert!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(stringify!($cond).to_string()));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "{} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

/// `assert_ne!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::Fail(format!(
                "{} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skips the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject(format!($($fmt)*)));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..=10, y in 0u64..1000, z in 1usize..300) {
            prop_assert!((3..=10).contains(&x));
            prop_assert!(y < 1000);
            prop_assert!((1..300).contains(&z));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(any::<bool>(), 1..50)) {
            prop_assert!(!v.is_empty() && v.len() < 50);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u8..=255) {
            prop_assume!(x.is_multiple_of(2));
            prop_assert!(x.is_multiple_of(2));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("t");
        let mut b = TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
