//! Property-based tests over the core data structures and SC invariants.

use proptest::prelude::*;
use reram_sc::sc::correlation::scc;
use reram_sc::sc::div::cordiv;
use reram_sc::sc::prelude::*;

proptest! {
    #[test]
    fn bitstream_value_is_popcount_over_length(bits in proptest::collection::vec(any::<bool>(), 1..512)) {
        let s: BitStream = bits.iter().copied().collect();
        let ones = bits.iter().filter(|&&b| b).count();
        prop_assert_eq!(s.count_ones(), ones as u64);
        prop_assert!((s.value() - ones as f64 / bits.len() as f64).abs() < 1e-12);
    }

    #[test]
    fn not_complements_value(bits in proptest::collection::vec(any::<bool>(), 1..512)) {
        let s: BitStream = bits.iter().copied().collect();
        let n = s.not();
        prop_assert!((s.value() + n.value() - 1.0).abs() < 1e-12);
        prop_assert_eq!(n.not(), s);
    }

    #[test]
    fn and_or_are_min_max_for_correlated(x in 0u8..=255, y in 0u8..=255, seed in 0u64..1000) {
        let mut sng = Sng::new(UniformSource::seed_from_u64(seed));
        let (sx, sy) = sng.generate_correlated(
            Fixed::from_u8(x), Fixed::from_u8(y), 512).expect("equal widths");
        let and = sx.and(&sy).expect("equal lengths");
        let or = sx.or(&sy).expect("equal lengths");
        // Exact lattice identities for nested (correlated) streams.
        prop_assert_eq!(and.count_ones(), sx.count_ones().min(sy.count_ones()));
        prop_assert_eq!(or.count_ones(), sx.count_ones().max(sy.count_ones()));
        // And the inclusion–exclusion identity in general.
        prop_assert_eq!(and.count_ones() + or.count_ones(),
                        sx.count_ones() + sy.count_ones());
    }

    #[test]
    fn xor_of_correlated_is_count_difference(x in 0u8..=255, y in 0u8..=255, seed in 0u64..1000) {
        let mut sng = Sng::new(UniformSource::seed_from_u64(seed));
        let (sx, sy) = sng.generate_correlated(
            Fixed::from_u8(x), Fixed::from_u8(y), 512).expect("equal widths");
        let diff = sx.xor(&sy).expect("equal lengths");
        prop_assert_eq!(diff.count_ones(), sx.count_ones().abs_diff(sy.count_ones()));
    }

    #[test]
    fn mux_selects_bitwise(pa in 0.0f64..1.0, pb in 0.0f64..1.0, seed in 0u64..500) {
        let n = 1024;
        let mut a = Sng::new(UniformSource::seed_from_u64(seed * 3 + 1));
        let mut b = Sng::new(UniformSource::seed_from_u64(seed * 3 + 2));
        let mut s = Sng::new(UniformSource::seed_from_u64(seed * 3 + 3));
        let sa = a.generate_prob(Prob::saturating(pa), n);
        let sb = b.generate_prob(Prob::saturating(pb), n);
        let sel = s.generate_prob(Prob::HALF, n);
        let out = sa.mux(&sb, &sel).expect("equal lengths");
        // Exact bit-level definition: out = (a AND s) OR (b AND NOT s).
        let expect = sa
            .and(&sel)
            .expect("equal lengths")
            .or(&sb.and(&sel.not()).expect("equal lengths"))
            .expect("equal lengths");
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn maj_equals_mux_selected_blend_for_correlated(x in 0u8..=255, y in 0u8..=255,
                                                    sel in 0u8..=255, seed in 0u64..500) {
        // For correlated operands, MAJ(a, b, s) is exactly the per-bit
        // MUX between min and max regions: value = min + P(s)·|a−b| in
        // expectation. Check the per-bit identity instead: maj bit equals
        // (a & b) | (s & (a ^ b)).
        let n = 512;
        let mut sng = Sng::new(UniformSource::seed_from_u64(seed + 9000));
        let (sa, sb) = sng.generate_correlated(
            Fixed::from_u8(x), Fixed::from_u8(y), n).expect("equal widths");
        let mut s_sng = Sng::new(UniformSource::seed_from_u64(seed + 19000));
        let ss = s_sng.generate_fixed(Fixed::from_u8(sel), n);
        let maj = sa.maj3(&sb, &ss).expect("equal lengths");
        let both = sa.and(&sb).expect("equal lengths");
        let diff = sa.xor(&sb).expect("equal lengths");
        let expect = both.or(&diff.and(&ss).expect("equal lengths")).expect("equal lengths");
        prop_assert_eq!(maj, expect);
    }

    #[test]
    fn cordiv_self_division_saturates(x in 128u8..=255, seed in 0u64..500) {
        // x / x must approach 1 for dense correlated operands; the only
        // zeros are the replayed initial state before the first divisor 1
        // (expected position < 2 for x ≥ 0.5).
        let mut sng = Sng::new(UniformSource::seed_from_u64(seed + 777));
        let (sx, sy) = sng.generate_correlated(
            Fixed::from_u8(x), Fixed::from_u8(x), 256).expect("equal widths");
        if sy.count_ones() == 0 {
            return Ok(());
        }
        let q = cordiv(&sx, &sy).expect("nonzero divisor");
        prop_assert!(q.value() <= 1.0);
        prop_assert!(q.value() > 0.8, "x/x = {}", q.value());
        // Once the first divisor 1 arrives, every later bit is 1.
        let first = (0..256).find(|&i| sy.get(i) == Some(true)).expect("has ones");
        for i in first..256 {
            prop_assert_eq!(q.get(i), Some(true), "position {}", i);
        }
    }

    #[test]
    fn scc_is_symmetric_and_bounded(xa in 0u8..=255, xb in 0u8..=255, seed in 0u64..500) {
        let mut a = Sng::new(UniformSource::seed_from_u64(seed * 7 + 1));
        let mut b = Sng::new(UniformSource::seed_from_u64(seed * 7 + 2));
        let sa = a.generate_fixed(Fixed::from_u8(xa), 512);
        let sb = b.generate_fixed(Fixed::from_u8(xb), 512);
        let ab = scc(&sa, &sb).expect("equal lengths");
        let ba = scc(&sb, &sa).expect("equal lengths");
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((-1.0..=1.0).contains(&ab));
    }

    #[test]
    fn prob_fixed_round_trip(value in 0u64..256) {
        let f = Fixed::new(value, 8).expect("in range");
        let p = f.to_prob();
        let back = p.to_fixed(8).expect("valid width");
        prop_assert_eq!(back, f);
    }

    #[test]
    fn rotation_preserves_popcount(bits in proptest::collection::vec(any::<bool>(), 1..256),
                                   k in 0usize..512) {
        let s: BitStream = bits.iter().copied().collect();
        prop_assert_eq!(s.rotate_left(k).count_ones(), s.count_ones());
    }
}
