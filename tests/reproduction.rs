//! Reproduction anchors: the headline quantitative claims of the paper,
//! checked end-to-end against this implementation.

use reram_sc::accel::cost::{reram_op_cost, ScOperation};
use reram_sc::accel::imsng::ImsngVariant;
use reram_sc::accel::pipeline::PipelineModel;
use reram_sc::baseline::cmos::{CmosDesign, CmosSng};
use reram_sc::device::energy::ReramCosts;

#[test]
fn table3_anchor_values() {
    let costs = ReramCosts::calibrated();
    let rows = [
        (ScOperation::Multiply, 80.8, 3.50),
        (ScOperation::Addition, 80.8, 3.50),
        (ScOperation::Subtraction, 81.6, 3.51),
        (ScOperation::Division, 12544.0, 4.48),
    ];
    for (op, latency, energy) in rows {
        let c = reram_op_cost(op, 256, 8, ImsngVariant::Opt, &costs);
        assert!(
            (c.latency_ns - latency).abs() / latency < 0.01,
            "{op:?}: {} vs {latency}",
            c.latency_ns
        );
        assert!(
            (c.energy_nj - energy).abs() / energy < 0.01,
            "{op:?}: {} vs {energy}",
            c.energy_nj
        );
    }
}

#[test]
fn imsng_opt_reduces_latency_5x_and_energy_3x() {
    // Paper: 395.4 ns / 10.23 nJ (naive) vs 78.2 ns / 3.42 nJ (opt).
    let (naive, opt) = bench_anchors();
    assert!(
        (naive.0 / opt.0 - 5.057).abs() < 0.05,
        "{}",
        naive.0 / opt.0
    );
    assert!((naive.1 / opt.1 - 2.99).abs() < 0.05, "{}", naive.1 / opt.1);
}

fn bench_anchors() -> ((f64, f64), (f64, f64)) {
    use reram_sc::accel::cost::imsng_cost;
    let costs = ReramCosts::calibrated();
    let naive = imsng_cost(8, ImsngVariant::Naive);
    let opt = imsng_cost(8, ImsngVariant::Opt);
    (
        (naive.latency_ns(&costs), naive.energy_nj(&costs, 256)),
        (opt.latency_ns(&costs), opt.energy_nj(&costs, 256)),
    )
}

#[test]
fn reram_latency_beats_cmos_by_the_reported_margin() {
    // Paper: the ReRAM design reduces latency by ~38% vs CMOS (simple
    // ops, N = 256) due to row-parallel execution.
    let costs = ReramCosts::calibrated();
    let cmos = CmosDesign::new(CmosSng::Lfsr);
    let reram = reram_op_cost(ScOperation::Multiply, 256, 8, ImsngVariant::Opt, &costs);
    let cmos_cost = cmos.op_cost(ScOperation::Multiply, 256);
    let reduction = 1.0 - reram.latency_ns / cmos_cost.latency_ns;
    assert!(
        (0.30..0.45).contains(&reduction),
        "latency reduction {reduction}"
    );
}

#[test]
fn energy_crossover_against_cmos_sits_between_64_and_256() {
    let costs = ReramCosts::calibrated();
    let cmos = CmosDesign::new(CmosSng::Lfsr);
    let better_at = |n: usize| {
        let reram = reram_op_cost(ScOperation::Multiply, n, 8, ImsngVariant::Opt, &costs);
        let c = cmos.op_cost_with_movement(ScOperation::Multiply, n, 2, 8);
        reram.energy_nj < c.energy_nj
    };
    assert!(better_at(32), "reram should win at n=32");
    assert!(better_at(64), "reram should win at n=64");
    assert!(!better_at(256), "cmos should win at n=256");
}

#[test]
fn headline_averages_land_near_the_paper() {
    // Paper: 2.8×/1.15× energy and 2.16×/1.39× throughput vs binary
    // CIM / CMOS. The reproduction targets the same order and ordering.
    use bench_averages::*;
    let (e_bin, e_cmos) = fig4_averages();
    assert!(e_bin > 1.5 && e_bin < 6.0, "energy vs binary CIM {e_bin}");
    assert!(e_cmos > 0.8 && e_cmos < 1.8, "energy vs CMOS {e_cmos}");
    let (t_bin, t_cmos) = fig5_averages();
    assert!(
        t_bin > 1.2 && t_bin < 4.5,
        "throughput vs binary CIM {t_bin}"
    );
    assert!(t_cmos > 0.9 && t_cmos < 2.2, "throughput vs CMOS {t_cmos}");
}

/// Minimal local re-implementation of the figure averages so the
/// integration test does not depend on the bench crate (which is a
/// workspace member but not a library dependency of the umbrella).
mod bench_averages {
    use super::*;
    use reram_sc::baseline::bincim::BinCimCosts;

    const LENGTHS: [usize; 4] = [32, 64, 128, 256];

    struct Kernel {
        conversions: f64,
        single_ops: f64,
        xor_ops: f64,
        divides: bool,
        result_writes: f64,
        cmos_ops: Vec<ScOperation>,
        words: usize,
        bin_cycles: fn(&BinCimCosts) -> f64,
    }

    fn kernels() -> Vec<Kernel> {
        vec![
            Kernel {
                conversions: 3.0,
                single_ops: 1.0,
                xor_ops: 0.0,
                divides: false,
                result_writes: 1.0,
                cmos_ops: vec![ScOperation::Addition],
                words: 3,
                bin_cycles: |c| 2.0 * c.mul_cycles(8) + c.add_cycles(16),
            },
            Kernel {
                conversions: 7.0,
                single_ops: 3.0,
                xor_ops: 0.0,
                divides: false,
                result_writes: 3.0,
                cmos_ops: vec![ScOperation::Addition; 3],
                words: 6,
                bin_cycles: |c| 4.0 * c.mul_cycles(8) + 3.0 * c.add_cycles(16),
            },
            Kernel {
                conversions: 3.0,
                single_ops: 0.0,
                xor_ops: 2.0,
                divides: true,
                result_writes: 3.0,
                cmos_ops: vec![
                    ScOperation::Subtraction,
                    ScOperation::Subtraction,
                    ScOperation::Division,
                ],
                words: 3,
                bin_cycles: |c| 2.0 * c.add_cycles(9) + c.div_cycles(8),
            },
        ]
    }

    fn reram_energy(k: &Kernel, n: usize, costs: &ReramCosts) -> f64 {
        let e = &costs.energies;
        let nf = n as f64;
        let conv = (40.0 * nf * e.e_sense_bit_pj + nf * e.e_write_bit_pj) / 1000.0;
        k.conversions * conv
            + k.single_ops * nf * e.e_slop_bit_pj / 1000.0
            + k.xor_ops * nf * e.e_slop_bit_pj * 1.25 / 1000.0
            + if k.divides {
                nf * e.e_cordiv_step_pj / 1000.0
            } else {
                0.0
            }
            + k.result_writes * nf * e.e_write_bit_pj / 1000.0
            + e.e_adc_sample_nj
    }

    pub fn fig4_averages() -> (f64, f64) {
        let costs = ReramCosts::calibrated();
        let bc = BinCimCosts::calibrated();
        let cmos = CmosDesign::new(CmosSng::Lfsr);
        let mut vs_bin = Vec::new();
        let mut cmos_vs_bin = Vec::new();
        for k in kernels() {
            let e_bin = bc.energy_per_word_nj((k.bin_cycles)(&bc));
            for &n in &LENGTHS {
                vs_bin.push(e_bin / reram_energy(&k, n, &costs));
                let e_cmos: f64 = k
                    .cmos_ops
                    .iter()
                    .map(|&op| cmos.op_cost(op, n).energy_nj)
                    .sum::<f64>()
                    + cmos.transfer_cost(k.words + 1, 8).energy_nj;
                cmos_vs_bin.push(e_bin / e_cmos);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let r = mean(&vs_bin);
        (r, r / mean(&cmos_vs_bin))
    }

    pub fn fig5_averages() -> (f64, f64) {
        let costs = ReramCosts::calibrated();
        let bc = BinCimCosts::calibrated();
        let cmos = CmosDesign::new(CmosSng::Lfsr);
        let arrays = 8.0;
        let lanes = 4.0;
        let mut vs_bin = Vec::new();
        let mut cmos_vs_bin = Vec::new();
        for k in kernels() {
            let t_bin = bc.latency_per_word_ns((k.bin_cycles)(&bc)) / arrays;
            for &n in &LENGTHS {
                let t = &costs.timings;
                let reram = (k.conversions * 40.0 * t.t_sense_ns
                    + k.single_ops * t.t_sense_ns
                    + k.xor_ops * (t.t_sense_ns + t.t_xor_extra_ns)
                    + if k.divides { t.t_cordiv_step_ns } else { 0.0 }
                    + t.t_adc_ns)
                    / arrays;
                vs_bin.push(t_bin / reram);
                let compute: f64 = k
                    .cmos_ops
                    .iter()
                    .map(|&op| cmos.op_cost(op, n).latency_ns)
                    .sum();
                let movement = cmos.transfer_cost(k.words + 1, 8).latency_ns;
                let t_cmos = movement.max(compute / lanes);
                cmos_vs_bin.push(t_bin / t_cmos);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let r = mean(&vs_bin);
        (r, r / mean(&cmos_vs_bin))
    }
}

#[test]
fn pipeline_throughput_scales_with_mats() {
    let one = PipelineModel::new(1, 8, ImsngVariant::Opt, ReramCosts::calibrated());
    let eight = PipelineModel::evaluation_default();
    assert_eq!(eight.arrays(), 8);
    let r = eight.throughput_ops_per_us(ScOperation::Multiply, 256)
        / one.throughput_ops_per_us(ScOperation::Multiply, 256);
    assert!((r - 8.0).abs() < 1e-9);
}
