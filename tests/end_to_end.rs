//! Cross-crate integration: the full ❶❷❸ flow from device model to
//! application quality, exercised through the umbrella crate.

use reram_sc::accel::engine::Accelerator;
use reram_sc::accel::imsng::ImsngVariant;
use reram_sc::device::faults::FaultRates;
use reram_sc::mem::prelude::*;
use reram_sc::sc::prelude::*;

#[test]
fn full_flow_accuracy_improves_with_stream_length() {
    let mut errors = Vec::new();
    for n in [32usize, 128, 512, 2048] {
        let mut total = 0.0;
        let trials = 20;
        for t in 0..trials {
            let mut acc = Accelerator::builder()
                .stream_len(n)
                .seed(t)
                .build()
                .expect("valid configuration");
            let x = acc.encode(Fixed::from_u8(180)).expect("rows");
            let y = acc.encode(Fixed::from_u8(90)).expect("rows");
            let p = acc.multiply(x, y).expect("uncorrelated");
            let v = acc.read_value(p).expect("alive");
            let exact = (180.0 / 256.0) * (90.0 / 256.0);
            total += (v - exact).abs();
        }
        errors.push(total / trials as f64);
    }
    // Monotone-ish improvement: the longest streams beat the shortest by
    // a wide margin.
    assert!(errors[3] < errors[0] / 2.0, "errors by length: {errors:?}");
}

#[test]
fn all_three_variants_compute_the_same_function() {
    let mut values = Vec::new();
    for variant in [
        ImsngVariant::Baseline,
        ImsngVariant::Naive,
        ImsngVariant::Opt,
    ] {
        let mut acc = Accelerator::builder()
            .stream_len(512)
            .variant(variant)
            .seed(42)
            .trng_bias_sigma(0.0)
            .build()
            .expect("valid configuration");
        let x = acc.encode(Fixed::from_u8(100)).expect("rows");
        values.push(acc.read_value(x).expect("alive"));
    }
    // Same seed, same randomness, same function: identical results.
    assert_eq!(values[0], values[1]);
    assert_eq!(values[1], values[2]);
    // Single-draw tolerance: ~3.5σ of a 512-bit binomial estimate.
    assert!((values[0] - 100.0 / 256.0).abs() < 0.08, "{}", values[0]);
}

#[test]
fn recorded_trace_replays_in_nvmain() {
    let mut acc = Accelerator::builder()
        .stream_len(256)
        .seed(3)
        .record_trace(true)
        .build()
        .expect("valid configuration");
    let (a, b) = acc
        .encode_correlated(Fixed::from_u8(40), Fixed::from_u8(200))
        .expect("rows");
    let d = acc.abs_subtract(a, b).expect("correlated");
    let _ = acc.read_value(d).expect("alive");

    let trace = acc.trace().expect("tracing enabled").clone();
    // The trace round-trips through the text format.
    let text = trace.to_text();
    let parsed = Trace::parse(&text).expect("well-formed trace");
    assert_eq!(parsed, trace);

    let mut sim = Simulator::new(MemoryConfig::reram_default());
    let stats = sim.run(&trace).expect("valid trace");
    assert!(stats.total_time_ns > 0.0);
    assert!(stats.total_energy_nj > 0.0);
    // Two conversions' sensing steps are present.
    assert_eq!(stats.command_counts["SCOUT"], 81); // 2×40 + 1 XOR
}

#[test]
fn fault_injection_shifts_results_but_preserves_scale() {
    let exact = 150.0 / 256.0;
    let mut clean_err = 0.0;
    let mut faulty_err = 0.0;
    let trials = 30;
    for t in 0..trials {
        let mut clean = Accelerator::builder()
            .stream_len(256)
            .seed(t)
            .build()
            .expect("valid configuration");
        let h = clean.encode(Fixed::from_u8(150)).expect("rows");
        clean_err += (clean.read_value(h).expect("alive") - exact).abs();

        let mut faulty = Accelerator::builder()
            .stream_len(256)
            .seed(t)
            .fault_rates(FaultRates::uniform(0.02))
            .build()
            .expect("valid configuration");
        let h = faulty.encode(Fixed::from_u8(150)).expect("rows");
        faulty_err += (faulty.read_value(h).expect("alive") - exact).abs();
    }
    clean_err /= trials as f64;
    faulty_err /= trials as f64;
    // Faults hurt, but gracefully (no catastrophic error scale).
    assert!(faulty_err >= clean_err * 0.8, "{clean_err} vs {faulty_err}");
    assert!(faulty_err < 0.15, "faulty error {faulty_err}");
}

#[test]
fn umbrella_reexports_compose() {
    // Every layer is reachable through the umbrella crate.
    let costs = reram_sc::device::energy::ReramCosts::calibrated();
    let cost = reram_sc::accel::cost::reram_op_cost(
        reram_sc::accel::cost::ScOperation::Multiply,
        256,
        8,
        ImsngVariant::Opt,
        &costs,
    );
    assert!((cost.latency_ns - 80.8).abs() < 0.1);
    let d = reram_sc::baseline::cmos::CmosDesign::new(reram_sc::baseline::cmos::CmosSng::Lfsr);
    assert!(
        d.op_cost(reram_sc::accel::cost::ScOperation::Multiply, 256)
            .latency_ns
            > cost.latency_ns
    );
}
