//! Integration tests across the application layer: every backend of each
//! kernel agrees with the software reference within SC tolerances.

use reram_sc::apps::scbackend::{CmosScConfig, CmosSngKind, ScReramConfig};
use reram_sc::apps::{bilinear, compositing, matting, metrics, synth, GrayImage};

fn psnr(a: &GrayImage, b: &GrayImage) -> f64 {
    metrics::psnr(a, b).expect("matching dims")
}

#[test]
fn compositing_backends_agree() {
    let set = synth::app_images(16, 16, 31);
    let reference =
        compositing::software(&set.foreground, &set.background, &set.alpha).expect("dims");

    let cim = compositing::binary_cim(&set.foreground, &set.background, &set.alpha, 0.0, 1)
        .expect("dims");
    assert!(psnr(&reference, &cim) > 45.0);

    let sc = compositing::sc_reram(
        &set.foreground,
        &set.background,
        &set.alpha,
        &ScReramConfig::new(256, 2),
    )
    .expect("substrate");
    assert!(psnr(&reference, &sc) > 20.0);

    let cmos = compositing::sc_cmos(
        &set.foreground,
        &set.background,
        &set.alpha,
        &CmosScConfig::new(256, CmosSngKind::Sobol, 3),
    )
    .expect("streams");
    assert!(psnr(&reference, &cmos) > 20.0);
}

#[test]
fn bilinear_backends_agree() {
    let src = synth::blobs(8, 8, 2, 11);
    let reference = bilinear::software(&src, 2).expect("factor");
    let cim = bilinear::binary_cim(&src, 2, 0.0, 1).expect("factor");
    assert!(psnr(&reference, &cim) > 35.0);
    let sc = bilinear::sc_reram(&src, 2, &ScReramConfig::new(256, 5)).expect("substrate");
    assert!(psnr(&reference, &sc) > 18.0);
}

#[test]
fn matting_round_trip_through_all_backends() {
    let set = synth::app_images(12, 12, 55);
    let observed =
        compositing::software(&set.foreground, &set.background, &set.alpha).expect("dims");
    let rec_true =
        matting::recomposite(&set.foreground, &set.background, &set.alpha).expect("dims");

    for (label, est) in [
        (
            "software",
            matting::software(&observed, &set.background, &set.foreground).expect("dims"),
        ),
        (
            "binary_cim",
            matting::binary_cim(&observed, &set.background, &set.foreground, 0.0, 1).expect("dims"),
        ),
        (
            "sc_reram",
            matting::sc_reram(
                &observed,
                &set.background,
                &set.foreground,
                &ScReramConfig::new(256, 7),
            )
            .expect("substrate"),
        ),
    ] {
        let rec = matting::recomposite(&set.foreground, &set.background, &est).expect("dims");
        let p = psnr(&rec_true, &rec);
        let floor = if label == "sc_reram" { 15.0 } else { 28.0 };
        assert!(p > floor, "{label}: psnr {p}");
    }
}

#[test]
fn sc_reram_is_deterministic_per_seed() {
    let set = synth::app_images(8, 8, 3);
    let cfg = ScReramConfig::new(64, 9);
    let a = compositing::sc_reram(&set.foreground, &set.background, &set.alpha, &cfg)
        .expect("substrate");
    let b = compositing::sc_reram(&set.foreground, &set.background, &set.alpha, &cfg)
        .expect("substrate");
    assert_eq!(a, b);
}

#[test]
fn pgm_round_trip_of_app_output() {
    let set = synth::app_images(16, 16, 5);
    let out = compositing::software(&set.foreground, &set.background, &set.alpha).expect("dims");
    let bytes = out.to_pgm();
    let back = GrayImage::from_pgm(&bytes).expect("well-formed pgm");
    assert_eq!(back, out);
}
